// Shared test scaffolding: a hand-wired simulated world, smaller and more
// pokeable than the runner's run_experiment (which the integration tests use
// instead).
//
// Adversity goes through the chaos spec (WorldOptions::chaos / apply_chaos)
// rather than hand-wired fault models, so tests script loss, partitions,
// and crashes with the same replayable text artifact the runner uses. The
// run invariant checker is on by default for any protocol with trace hooks.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/common/ensure.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/chaos.h"
#include "src/net/network.h"
#include "src/protocols/invariant_checker.h"
#include "src/protocols/node.h"
#include "src/sim/simulator.h"

namespace gridbox::testing {

struct WorldOptions {
  std::size_t group_size = 16;
  std::uint32_t k = 4;
  double loss = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t hash_salt = 1;
  bool audit = true;
  SimTime latency_lo = SimTime::micros(100);
  SimTime latency_hi = SimTime::micros(900);

  /// Chaos spec text (docs/chaos.md); layered over `loss` (a `loss`
  /// directive in the spec takes precedence). Crashes in the spec are
  /// scheduled against this world's group.
  std::string chaos;

  /// Install the run invariant checker on nodes whose config has trace
  /// hooks (hier-gossip). Violations throw InvariantError mid-run.
  bool invariants = true;

  /// Override the default member-i-votes-i table (same size as the group).
  std::optional<std::vector<double>> vote_values;
};

/// Owns every substrate object a protocol needs, with lifetimes arranged so
/// nodes can be created, attached, and run inside one test body.
class World {
 public:
  explicit World(const WorldOptions& options)
      : options_(options),
        root_(options.seed),
        group_(options.group_size),
        votes_(make_votes(options)),
        hash_(options.hash_salt),
        hierarchy_(options.group_size, options.k, hash_),
        network_(simulator_, make_faults(options.loss),
                 std::make_unique<net::UniformLatency>(options.latency_lo,
                                                       options.latency_hi),
                 root_.derive(0xBEEF)) {
    if (options.audit) {
      audit_ = std::make_unique<agg::AuditRegistry>(options.group_size);
    }
    network_.set_liveness([this](MemberId m) { return group_.is_alive(m); });
    if (!options.chaos.empty()) apply_chaos(options.chaos);
  }

  /// Applies a chaos spec to this world: network-affecting directives
  /// install a ChaosSchedule (at most one per world, before any send);
  /// crash directives schedule against the group. Callable after
  /// construction so tests can script crashes of computed member ids
  /// (e.g. an elected leader).
  void apply_chaos(const std::string& text) {
    const net::ChaosSpec spec = net::ChaosSpec::parse(text);
    if (spec.affects_network()) {
      expects(network_.chaos() == nullptr,
              "world already has a network chaos schedule");
      network_.install_chaos(std::make_unique<net::ChaosSchedule>(
          spec, make_faults(options_.loss), options_.group_size,
          root_.derive(0xC4A05)));
    }
    net::schedule_chaos_crashes(spec, simulator_,
                                [this](MemberId m) { group_.crash(m); });
  }

  [[nodiscard]] protocols::NodeEnv env(
      agg::AggregateKind kind = agg::AggregateKind::kAverage) {
    protocols::NodeEnv e;
    e.scheduler = &simulator_;
    e.network = &network_;
    e.hierarchy = &hierarchy_;
    e.audit = audit_.get();
    e.is_alive = [this](MemberId m) { return group_.is_alive(m); };
    e.kind = kind;
    return e;
  }

  /// Builds one node per member with NodeType(id, vote, view, env, rng, cfg),
  /// attaches them, and returns the vector (world keeps no ownership). When
  /// the config carries gossip trace hooks and invariants are enabled, the
  /// run invariant checker is chained in front of any configured trace.
  template <typename NodeType, typename Config>
  std::vector<std::unique_ptr<NodeType>> make_nodes(Config config) {
    if constexpr (requires { config.trace; config.round_duration; }) {
      if (options_.invariants) {
        protocols::InvariantChecker::Config icfg;
        icfg.group_size = options_.group_size;
        icfg.fanout = options_.k;
        icfg.num_phases = hierarchy_.num_phases();
        icfg.scheduler = &simulator_;
        icfg.audit = audit_.get();
        const std::uint64_t total_rounds =
            hierarchy_.num_phases() *
                config.rounds_per_phase(options_.group_size) +
            1;
        icfg.deadline =
            config.start_skew_max +
            SimTime::micros(static_cast<SimTime::underlying>(total_rounds) *
                            config.round_duration.ticks());
        icfg.next = config.trace;
        checker_ = std::make_unique<protocols::InvariantChecker>(icfg);
        config.trace = checker_.get();
      }
    }
    std::vector<std::unique_ptr<NodeType>> nodes;
    const membership::View view = group_.full_view();
    for (const MemberId m : group_.members()) {
      auto node = std::make_unique<NodeType>(m, votes_.of(m), view, env(),
                                             root_.derive(0x1000 + m.value()),
                                             config);
      network_.attach(m, *node);
      nodes.push_back(std::move(node));
    }
    return nodes;
  }

  template <typename NodeType>
  void start_all(std::vector<std::unique_ptr<NodeType>>& nodes,
                 SimTime at = SimTime::zero()) {
    for (auto& node : nodes) node->start(at);
  }

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::SimNetwork& network() { return network_; }
  [[nodiscard]] membership::Group& group() { return group_; }
  [[nodiscard]] const agg::VoteTable& votes() const { return votes_; }
  [[nodiscard]] const hierarchy::GridBoxHierarchy& hierarchy() const {
    return hierarchy_;
  }
  [[nodiscard]] agg::AuditRegistry* audit() { return audit_.get(); }
  [[nodiscard]] Rng& rng() { return root_; }
  /// The installed invariant checker (null until make_nodes on a traced
  /// config, or when invariants are off).
  [[nodiscard]] protocols::InvariantChecker* checker() {
    return checker_.get();
  }

 private:
  static agg::VoteTable make_votes(const WorldOptions& options) {
    if (options.vote_values.has_value()) {
      expects(options.vote_values->size() == options.group_size,
              "vote_values must match group_size");
      return agg::VoteTable{*options.vote_values};
    }
    // Simple distinct votes: member i votes i. Makes expected aggregates
    // trivially computable in tests.
    std::vector<double> values(options.group_size);
    for (std::size_t i = 0; i < options.group_size; ++i) {
      values[i] = static_cast<double>(i);
    }
    return agg::VoteTable{std::move(values)};
  }

  static std::unique_ptr<net::FaultModel> make_faults(double loss) {
    if (loss <= 0.0) return std::make_unique<net::NoLoss>();
    return std::make_unique<net::IndependentLoss>(loss);
  }

  WorldOptions options_;
  Rng root_;
  sim::Simulator simulator_;
  membership::Group group_;
  agg::VoteTable votes_;
  hashing::FairHash hash_;
  hierarchy::GridBoxHierarchy hierarchy_;
  net::SimNetwork network_;
  std::unique_ptr<agg::AuditRegistry> audit_;
  std::unique_ptr<protocols::InvariantChecker> checker_;
};

}  // namespace gridbox::testing
