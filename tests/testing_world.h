// Shared test scaffolding: a hand-wired simulated world, smaller and more
// pokeable than the runner's run_experiment (which the integration tests use
// instead).
#pragma once

#include <memory>
#include <vector>

#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/node.h"
#include "src/sim/simulator.h"

namespace gridbox::testing {

struct WorldOptions {
  std::size_t group_size = 16;
  std::uint32_t k = 4;
  double loss = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t hash_salt = 1;
  bool audit = true;
  SimTime latency_lo = SimTime::micros(100);
  SimTime latency_hi = SimTime::micros(900);
};

/// Owns every substrate object a protocol needs, with lifetimes arranged so
/// nodes can be created, attached, and run inside one test body.
class World {
 public:
  explicit World(const WorldOptions& options)
      : options_(options),
        root_(options.seed),
        group_(options.group_size),
        votes_(make_votes(options.group_size)),
        hash_(options.hash_salt),
        hierarchy_(options.group_size, options.k, hash_),
        network_(simulator_, make_faults(options.loss),
                 std::make_unique<net::UniformLatency>(options.latency_lo,
                                                       options.latency_hi),
                 root_.derive(0xBEEF)) {
    if (options.audit) {
      audit_ = std::make_unique<agg::AuditRegistry>(options.group_size);
    }
    network_.set_liveness([this](MemberId m) { return group_.is_alive(m); });
  }

  [[nodiscard]] protocols::NodeEnv env(
      agg::AggregateKind kind = agg::AggregateKind::kAverage) {
    protocols::NodeEnv e;
    e.simulator = &simulator_;
    e.network = &network_;
    e.hierarchy = &hierarchy_;
    e.audit = audit_.get();
    e.is_alive = [this](MemberId m) { return group_.is_alive(m); };
    e.kind = kind;
    return e;
  }

  /// Builds one node per member with NodeType(id, vote, view, env, rng, cfg),
  /// attaches them, and returns the vector (world keeps no ownership).
  template <typename NodeType, typename Config>
  std::vector<std::unique_ptr<NodeType>> make_nodes(const Config& config) {
    std::vector<std::unique_ptr<NodeType>> nodes;
    const membership::View view = group_.full_view();
    for (const MemberId m : group_.members()) {
      auto node = std::make_unique<NodeType>(m, votes_.of(m), view, env(),
                                             root_.derive(0x1000 + m.value()),
                                             config);
      network_.attach(m, *node);
      nodes.push_back(std::move(node));
    }
    return nodes;
  }

  template <typename NodeType>
  void start_all(std::vector<std::unique_ptr<NodeType>>& nodes,
                 SimTime at = SimTime::zero()) {
    for (auto& node : nodes) node->start(at);
  }

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::SimNetwork& network() { return network_; }
  [[nodiscard]] membership::Group& group() { return group_; }
  [[nodiscard]] const agg::VoteTable& votes() const { return votes_; }
  [[nodiscard]] const hierarchy::GridBoxHierarchy& hierarchy() const {
    return hierarchy_;
  }
  [[nodiscard]] agg::AuditRegistry* audit() { return audit_.get(); }
  [[nodiscard]] Rng& rng() { return root_; }

 private:
  static agg::VoteTable make_votes(std::size_t n) {
    // Simple distinct votes: member i votes i. Makes expected aggregates
    // trivially computable in tests.
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
    return agg::VoteTable{std::move(values)};
  }

  static std::unique_ptr<net::FaultModel> make_faults(double loss) {
    if (loss <= 0.0) return std::make_unique<net::NoLoss>();
    return std::make_unique<net::IndependentLoss>(loss);
  }

  WorldOptions options_;
  Rng root_;
  sim::Simulator simulator_;
  membership::Group group_;
  agg::VoteTable votes_;
  hashing::FairHash hash_;
  hierarchy::GridBoxHierarchy hierarchy_;
  net::SimNetwork network_;
  std::unique_ptr<agg::AuditRegistry> audit_;
};

}  // namespace gridbox::testing
