// Metamorphic relations: properties that must hold between *pairs* of runs,
// catching bugs no single-run assertion can see.
//
// Two kinds of relation appear here. Statistical: completeness is
// non-increasing in loss (averaged over seeds — at a single seed, changing
// the loss probability decorrelates every subsequent RNG draw, so pointwise
// monotonicity is not guaranteed). Exact: vote values never steer control
// flow, and duplicated deliveries never change knowledge, so those runs
// must match bit-for-bit, not approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/protocols/gossip/hier_gossip.h"
#include "src/runner/experiment.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using protocols::gossip::GossipConfig;
using protocols::gossip::HierGossipNode;
using testing::World;
using testing::WorldOptions;

constexpr std::size_t kSeeds = 5;

double mean_completeness_at(double ucast_loss, double partition_loss) {
  double sum = 0.0;
  for (std::size_t s = 0; s < kSeeds; ++s) {
    runner::ExperimentConfig config;
    config.group_size = 64;
    config.ucast_loss = ucast_loss;
    config.partition_loss = partition_loss;
    config.crash_probability = 0.0;
    config.seed = 100 + s;
    sum += runner::run_experiment(config).measurement.mean_completeness;
  }
  return sum / static_cast<double>(kSeeds);
}

TEST(Metamorphic, CompletenessNonIncreasingInUnicastLoss) {
  const double c00 = mean_completeness_at(0.0, -1.0);
  const double c30 = mean_completeness_at(0.3, -1.0);
  const double c60 = mean_completeness_at(0.6, -1.0);
  // Small tolerance: the relation is on means over a finite seed sample.
  EXPECT_GE(c00 + 0.02, c30) << c00 << " -> " << c30;
  EXPECT_GE(c30 + 0.02, c60) << c30 << " -> " << c60;
  // And the sweep must actually bite: heavy loss costs real completeness.
  EXPECT_LT(c60, c00);
}

TEST(Metamorphic, CompletenessNonIncreasingInPartitionLoss) {
  const double c00 = mean_completeness_at(0.1, 0.1);
  const double c50 = mean_completeness_at(0.1, 0.5);
  const double c95 = mean_completeness_at(0.1, 0.95);
  EXPECT_GE(c00 + 0.02, c50) << c00 << " -> " << c50;
  EXPECT_GE(c50 + 0.02, c95) << c50 << " -> " << c95;
  EXPECT_LT(c95, c00);
}

// Vote VALUES are payload, never protocol input: gossipee choice, phase
// timing, and value selection draw only on rng streams and member ids. So
// permuting the vote table changes which numbers flow, but every node's
// coverage (count + audited member set) must be bitwise identical.
TEST(Metamorphic, PermutingVotesLeavesCoverageBitwiseIdentical) {
  const std::size_t n = 32;
  WorldOptions base;
  base.group_size = n;
  base.loss = 0.25;
  base.seed = 11;

  WorldOptions permuted = base;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  Rng perm_rng(99);
  perm_rng.shuffle(values);
  permuted.vote_values = values;

  World world_a(base);
  World world_b(permuted);
  auto nodes_a = world_a.make_nodes<HierGossipNode>(GossipConfig{});
  auto nodes_b = world_b.make_nodes<HierGossipNode>(GossipConfig{});
  world_a.start_all(nodes_a);
  world_b.start_all(nodes_b);
  world_a.simulator().run();
  world_b.simulator().run();

  ASSERT_EQ(nodes_a.size(), nodes_b.size());
  for (std::size_t i = 0; i < nodes_a.size(); ++i) {
    ASSERT_EQ(nodes_a[i]->finished(), nodes_b[i]->finished());
    EXPECT_EQ(nodes_a[i]->outcome().estimate.count(),
              nodes_b[i]->outcome().estimate.count())
        << "coverage diverged at M" << i;
    EXPECT_EQ(nodes_a[i]->outcome().finish_time,
              nodes_b[i]->outcome().finish_time);
  }
  EXPECT_EQ(world_a.network().stats().messages_sent,
            world_b.network().stats().messages_sent);
}

// Duplication 1.0 with zero spread never changes any node's estimate:
// duplicates are only made of delivered messages, a same-tick duplicate is
// sequenced after its original (so the receiver's phase cannot have moved
// between the two), and merges are first-received-wins idempotent. With
// chaos's separated decision streams the relation is exact — estimates
// match bit-for-bit, under loss too. (With spread > 0 a duplicate may land
// after the receiver *entered* the message's phase and be absorbed where
// the original was dropped as stale — legitimately more knowledge, so only
// spread=0 admits an exact relation; see the spread>0 test below.)
TEST(Metamorphic, FullDuplicationNeverChangesAnyEstimate) {
  WorldOptions plain;
  plain.group_size = 32;
  plain.seed = 5;
  plain.chaos = "loss 0.3\n";
  WorldOptions duplicated = plain;
  duplicated.chaos = "loss 0.3\ndup p=1 extra=2 spread=0us\n";

  World world_a(plain);
  World world_b(duplicated);
  auto nodes_a = world_a.make_nodes<HierGossipNode>(GossipConfig{});
  auto nodes_b = world_b.make_nodes<HierGossipNode>(GossipConfig{});
  world_a.start_all(nodes_a);
  world_b.start_all(nodes_b);
  world_a.simulator().run();
  world_b.simulator().run();

  EXPECT_GT(world_b.network().stats().messages_duplicated, 0u);
  for (std::size_t i = 0; i < nodes_a.size(); ++i) {
    ASSERT_EQ(nodes_a[i]->finished(), nodes_b[i]->finished());
    EXPECT_EQ(nodes_a[i]->outcome().estimate, nodes_b[i]->outcome().estimate)
        << "duplication changed M" << i << "'s estimate";
  }
}

// Same relation end-to-end through the runner (chaos spec in the config).
TEST(Metamorphic, FullDuplicationPreservesRunMeasurement) {
  runner::ExperimentConfig plain;
  plain.group_size = 48;
  plain.ucast_loss = 0.0;
  plain.crash_probability = 0.0;
  plain.audit = true;
  plain.seed = 21;
  plain.chaos_spec = "loss 0.25\n";

  runner::ExperimentConfig duplicated = plain;
  duplicated.chaos_spec = "loss 0.25\ndup p=1 extra=1 spread=0us\n";

  const auto a = runner::run_experiment(plain).measurement;
  const auto b = runner::run_experiment(duplicated).measurement;
  EXPECT_EQ(a.mean_completeness, b.mean_completeness);
  EXPECT_EQ(a.min_completeness, b.min_completeness);
  EXPECT_EQ(a.true_value, b.true_value);
  EXPECT_EQ(a.audit_violations, 0u);
  EXPECT_EQ(b.audit_violations, 0u);
}

// Spread > 0 breaks exactness by design — a delayed copy can be absorbed in
// a phase where the original was stale — but must only ever ADD audited
// knowledge: the no-double-counting and reconstruction invariants hold and
// completeness stays high.
TEST(Metamorphic, SpreadDuplicationStaysCleanAndAudited) {
  runner::ExperimentConfig config;
  config.group_size = 48;
  config.ucast_loss = 0.15;
  config.crash_probability = 0.0;
  config.audit = true;
  config.seed = 22;
  config.chaos_spec = "dup p=1 extra=2 spread=2ms\n";
  const auto m = runner::run_experiment(config).measurement;
  EXPECT_EQ(m.audit_violations, 0u);
  EXPECT_EQ(m.reconstruction_failures, 0u);
  EXPECT_GT(m.mean_completeness, 0.5);
}

}  // namespace
}  // namespace gridbox
