// Periodic aggregation service (§2's "periodically calculates" extension).
#include "src/protocols/gossip/periodic.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/testing_world.h"

namespace gridbox::protocols::gossip {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

PeriodicConfig periodic_config(std::size_t epochs) {
  PeriodicConfig config;
  config.gossip.k = 4;
  config.gossip.fanout_m = 2;
  config.gossip.round_multiplier_c = 2.0;
  config.period = SimTime::seconds(1);
  config.epochs = epochs;
  config.max_latency = SimTime::millis(5);
  return config;
}

std::vector<std::unique_ptr<PeriodicAggregatorNode>> make_periodic_nodes(
    World& world, const PeriodicConfig& config,
    const std::function<double(MemberId, std::size_t)>& vote_fn) {
  std::vector<std::unique_ptr<PeriodicAggregatorNode>> nodes;
  const membership::View view = world.group().full_view();
  for (const MemberId m : world.group().members()) {
    nodes.push_back(std::make_unique<PeriodicAggregatorNode>(
        m, [m, vote_fn](std::size_t epoch) { return vote_fn(m, epoch); },
        view, world.env(), world.rng().derive(0x9E10D1C + m.value()),
        config));
    world.network().attach(m, *nodes.back());
  }
  return nodes;
}

TEST(Periodic, RunsTheConfiguredNumberOfEpochs) {
  WorldOptions options;
  options.group_size = 32;
  options.audit = false;
  World world(options);
  auto nodes = make_periodic_nodes(
      world, periodic_config(3),
      [](MemberId m, std::size_t epoch) {
        return static_cast<double>(m.value()) + 100.0 * static_cast<double>(epoch);
      });
  for (auto& node : nodes) node->start(SimTime::zero());
  world.simulator().run();

  for (const auto& node : nodes) {
    ASSERT_EQ(node->history().size(), 3u);
    for (const auto& outcome : node->history()) {
      EXPECT_TRUE(outcome.finished);
      EXPECT_EQ(outcome.estimate.count(), 32u);
    }
  }
}

TEST(Periodic, EpochEstimatesTrackChangingVotes) {
  // Votes shift by +100 per epoch; every epoch's average must follow.
  WorldOptions options;
  options.group_size = 32;
  options.audit = false;
  World world(options);
  auto nodes = make_periodic_nodes(
      world, periodic_config(3),
      [](MemberId m, std::size_t epoch) {
        return static_cast<double>(m.value()) +
               100.0 * static_cast<double>(epoch);
      });
  for (auto& node : nodes) node->start(SimTime::zero());
  world.simulator().run();

  const double base_avg = 15.5;  // mean of 0..31
  for (const auto& node : nodes) {
    for (std::size_t epoch = 0; epoch < 3; ++epoch) {
      EXPECT_DOUBLE_EQ(node->history()[epoch].estimate.value(
                           agg::AggregateKind::kAverage),
                       base_avg + 100.0 * static_cast<double>(epoch));
    }
  }
}

TEST(Periodic, LatestPointsAtNewestEstimate) {
  WorldOptions options;
  options.group_size = 16;
  options.audit = false;
  World world(options);
  auto nodes = make_periodic_nodes(
      world, periodic_config(2),
      [](MemberId, std::size_t epoch) { return static_cast<double>(epoch); });
  EXPECT_EQ(nodes[0]->latest(), nullptr);
  for (auto& node : nodes) node->start(SimTime::zero());
  world.simulator().run();
  ASSERT_NE(nodes[0]->latest(), nullptr);
  EXPECT_DOUBLE_EQ(
      nodes[0]->latest()->estimate.value(agg::AggregateKind::kAverage), 1.0);
}

TEST(Periodic, RejectsOverlappingEpochs) {
  WorldOptions options;
  options.group_size = 32;
  options.audit = false;
  World world(options);
  PeriodicConfig config = periodic_config(2);
  config.period = SimTime::millis(50);  // far below the instance duration
  const membership::View view = world.group().full_view();
  EXPECT_THROW(PeriodicAggregatorNode(
                   MemberId{0}, [](std::size_t) { return 1.0; }, view,
                   world.env(), Rng{1}, config),
               PreconditionError);
}

TEST(Periodic, CrashedMemberLeavesUnfinishedEpochs) {
  WorldOptions options;
  options.group_size = 32;
  options.audit = false;
  World world(options);
  auto nodes = make_periodic_nodes(
      world, periodic_config(2),
      [](MemberId, std::size_t) { return 1.0; });
  for (auto& node : nodes) node->start(SimTime::zero());
  // Kill member 3 during epoch 0.
  world.simulator().schedule_at(SimTime::millis(5), [&world] {
    world.group().crash(MemberId{3});
  });
  world.simulator().run();

  EXPECT_EQ(nodes[3]->history().size(), 2u);
  EXPECT_FALSE(nodes[3]->history()[0].finished);
  EXPECT_FALSE(nodes[3]->history()[1].finished);
  // Everyone else completes both epochs (possibly missing the dead member's
  // later votes).
  for (const auto& node : nodes) {
    if (node->self() == MemberId{3}) continue;
    ASSERT_EQ(node->history().size(), 2u);
    EXPECT_TRUE(node->history()[0].finished);
    EXPECT_TRUE(node->history()[1].finished);
    EXPECT_GE(node->history()[1].estimate.count(), 31u);
  }
}

TEST(Periodic, StartTwiceThrows) {
  WorldOptions options;
  options.group_size = 16;
  options.audit = false;
  World world(options);
  auto nodes = make_periodic_nodes(world, periodic_config(1),
                                   [](MemberId, std::size_t) { return 1.0; });
  nodes[0]->start(SimTime::zero());
  EXPECT_THROW(nodes[0]->start(SimTime::zero()), PreconditionError);
}

}  // namespace
}  // namespace gridbox::protocols::gossip
