// Service soak (ctest label `slow`): one long streaming service run over
// real UDP sockets — 200 epochs of N = 64 through a window of 8 — hunting
// what a short run cannot show: file descriptors that grow with the epoch
// stream (the mux must keep ONE socket per member for the whole service)
// and per-instance memory that outlives its instance (arena recycling must
// bound live state by the window, not the stream length).
#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdint>

#include "src/obs/bench_io.h"
#include "src/service/udp_service.h"

namespace gridbox {
namespace {

/// Open descriptors of this process, via /proc/self/fd (the traversal's own
/// fd is a constant offset that cancels in comparisons).
[[nodiscard]] std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

[[nodiscard]] service::UdpServiceConfig soak_config(std::size_t instances,
                                                    std::uint16_t port_base) {
  service::UdpServiceConfig config;
  config.service.experiment.group_size = 64;
  config.service.experiment.seed = 9;
  config.service.experiment.ucast_loss = 0.0;
  config.service.experiment.crash_probability = 0.0;
  config.service.experiment.audit = true;
  config.service.experiment.gossip.round_duration = SimTime::millis(2);
  config.service.instances = instances;
  config.service.epoch_interval = SimTime::millis(5);
  config.service.max_in_flight = 8;
  config.port_base = port_base;
  return config;
}

TEST(ServiceSoak, TwoHundredEpochsHoldFdsAndMemorySteady) {
  // Warm run: binds sockets once, fills the arena pool, touches every
  // lazily-created process structure. Baselines are taken after it.
  {
    const auto warm = service::run_udp_service(soak_config(16, 46000));
    ASSERT_TRUE(warm.result.completed);
  }
  const std::size_t baseline_fds = open_fd_count();
  ASSERT_GT(baseline_fds, 0u) << "/proc/self/fd unavailable";
  const std::uint64_t baseline_rss = obs::peak_rss_bytes();

  const auto result = service::run_udp_service(soak_config(200, 47000));
  ASSERT_TRUE(result.result.completed);
  ASSERT_EQ(result.result.metrics.completed, 200u);
  ASSERT_EQ(result.result.metrics.failed, 0u);
  for (const service::InstanceResult& inst : result.result.instances) {
    ASSERT_TRUE(inst.completed) << "instance " << inst.id;
    ASSERT_EQ(inst.measurement.audit_violations, 0u) << "instance " << inst.id;
    ASSERT_EQ(inst.measurement.reconstruction_failures, 0u)
        << "instance " << inst.id;
    ASSERT_EQ(inst.invariant_violations, 0u)
        << "instance " << inst.id << ": " << inst.first_violation;
  }

  // Sockets are per member, not per instance: the whole 200-epoch stream
  // must release every descriptor it bound.
  const std::size_t fds = open_fd_count();
  EXPECT_EQ(fds, baseline_fds)
      << "fd leak across the service run: " << baseline_fds << " -> " << fds;

  // Arena recycling bounds live per-instance state by the in-flight window.
  // 200 epochs may not grow peak RSS by more than a generous fixed slack
  // (results/lineage bookkeeping), far below 200 un-recycled arenas.
  const std::uint64_t rss = obs::peak_rss_bytes();
  EXPECT_LT(rss, baseline_rss + (std::uint64_t{64} << 20))
      << "peak RSS grew " << (rss - baseline_rss) / (1 << 20)
      << " MiB across 200 epochs";
}

}  // namespace
}  // namespace gridbox
