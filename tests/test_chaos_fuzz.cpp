// Heavy chaos corpus (CTest label: chaos) — sized for the sanitizer job.
// A larger random-spec sweep than the tier-1 seed corpus, plus the
// differential oracle: all four protocols run over the SAME chaos script
// and must agree on the ground truth, keep audited no-double-counting, and
// produce estimates that reconstruct exactly from their audited vote sets.
// Every failure message embeds the full spec text for standalone replay
// (`gridbox_sim --differential --chaos "<spec>"`).
#include <gtest/gtest.h>

#include "src/net/chaos.h"
#include "src/runner/differential.h"
#include "src/runner/experiment.h"

namespace gridbox {
namespace {

TEST(ChaosFuzz, LargeRandomCorpusHoldsInvariants) {
  Rng corpus_rng(0xD1CE);
  for (std::size_t i = 0; i < 96; ++i) {
    const net::ChaosSpec spec =
        net::random_chaos_spec(corpus_rng, 32, SimTime::millis(200));
    runner::ExperimentConfig config;
    config.group_size = 32;
    config.ucast_loss = 0.0;
    config.crash_probability = 0.0;
    config.audit = true;
    config.seed = 0xA000 + i;
    config.chaos_spec = spec.to_text();
    try {
      const runner::RunResult result = runner::run_experiment(config);
      EXPECT_EQ(result.measurement.audit_violations, 0u)
          << "spec " << i << ":\n" << spec.to_text();
      EXPECT_EQ(result.measurement.reconstruction_failures, 0u)
          << "spec " << i << ":\n" << spec.to_text();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "spec " << i << " violated a run invariant: "
                    << e.what() << "\nreplay spec:\n" << spec.to_text();
    }
  }
}

TEST(ChaosFuzz, DifferentialOracleAgreesUnderRandomChaos) {
  Rng corpus_rng(0x0D1FF);
  for (std::size_t i = 0; i < 24; ++i) {
    const net::ChaosSpec spec =
        net::random_chaos_spec(corpus_rng, 24, SimTime::millis(150));
    runner::ExperimentConfig base;
    base.group_size = 24;
    base.ucast_loss = 0.0;
    base.crash_probability = 0.0;
    base.seed = 0xB000 + i;
    base.chaos_spec = spec.to_text();
    const runner::DifferentialReport report = runner::run_differential(base);
    EXPECT_TRUE(report.ok()) << "protocols diverged under spec " << i << ":\n"
                             << spec.to_text();
    for (const runner::DifferentialRow& row : report.rows) {
      EXPECT_TRUE(row.ran) << to_string(row.protocol) << " threw under spec "
                           << i << ": " << row.error << "\n"
                           << spec.to_text();
    }
  }
}

// Hand-picked worst cases that random sampling rarely concentrates on.
TEST(ChaosFuzz, AdversarialHandPickedScripts) {
  const char* kScripts[] = {
      // Everything at once, overlapping windows.
      "loss 0.35\n"
      "burst 0us..80ms good=0.05 bad=0.9 go-bad=0.2 go-good=0.1\n"
      "jitter p=0.8 0us..5ms\n"
      "dup p=0.9 extra=3 spread=2ms\n"
      "partition 20ms..60ms boundary=half cross=1\n"
      "crash M3 at=30ms\n"
      "crash M17 at=45ms\n",
      // Total partition for the entire horizon.
      "partition 0us..1s boundary=half cross=1\n",
      // Asymmetric per-link blackouts on many links.
      "link M0->M1 1\nlink M1->M0 1\nlink M2->M3 1\n"
      "link M5->M0 1\nlink M9->M2 1\n",
      // Extreme duplication with zero spread (same-tick duplicates).
      "dup p=1 extra=4 spread=0us\n",
  };
  std::size_t index = 0;
  for (const char* script : kScripts) {
    runner::ExperimentConfig base;
    base.group_size = 24;
    base.ucast_loss = 0.0;
    base.crash_probability = 0.0;
    base.seed = 0xC000 + index++;
    base.chaos_spec = script;
    const runner::DifferentialReport report = runner::run_differential(base);
    EXPECT_TRUE(report.ok()) << "divergence under hand-picked script:\n"
                             << script;
  }
}

}  // namespace
}  // namespace gridbox
