// bench_util.h: flag parsing, reproducibility columns, JSON table export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/json.h"
#include "src/runner/sweep.h"
#include "src/runner/table.h"

namespace gridbox {
namespace {

std::size_t parse_jobs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string arg0 = "bench";
  argv.push_back(arg0.data());
  for (std::string& a : args) argv.push_back(a.data());
  return bench::jobs_from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchUtil, JobsFromArgsParsesValidValues) {
  EXPECT_EQ(parse_jobs({"--jobs", "4"}), 4u);
  EXPECT_EQ(parse_jobs({"--other", "x", "--jobs", "2"}), 2u);
  EXPECT_EQ(parse_jobs({}), 0u);  // absent: auto
}

TEST(BenchUtil, JobsFromArgsWarnsOnMalformedValue) {
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_jobs({"--jobs", "8x"}), 0u);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("warning"), std::string::npos) << warning;
  EXPECT_NE(warning.find("8x"), std::string::npos) << warning;
}

TEST(BenchUtil, JobsFromArgsWarnsOnNegativeZeroAndMissing) {
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_jobs({"--jobs", "-2"}), 0u);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("warning"),
            std::string::npos);

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_jobs({"--jobs", "0"}), 0u);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("warning"),
            std::string::npos);

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_jobs({"--jobs"}), 0u);  // trailing flag without a value
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("missing"),
            std::string::npos);
}

TEST(BenchUtil, ChaosIdNormalizesSpecs) {
  EXPECT_EQ(bench::chaos_id(""), "-");
  EXPECT_EQ(bench::chaos_id("loss 0.2\n"), "loss 0.2");
  EXPECT_EQ(bench::chaos_id("loss 0.2\ncrash M1 at=5ms\n"),
            "loss 0.2;crash M1 at=5ms");
}

TEST(BenchUtil, AppendReproAddsIdentificationColumns) {
  runner::Table table({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  bench::append_repro(table, 42, 1, "loss 0.1\n");
  EXPECT_EQ(table.columns(), 5u);
  EXPECT_EQ(table.header()[2], "seed");
  EXPECT_EQ(table.header()[3], "jobs");
  EXPECT_EQ(table.header()[4], "chaos");
  EXPECT_EQ(table.row(0)[2], "42");
  EXPECT_EQ(table.row(0)[3], "1");
  EXPECT_EQ(table.row(1)[4], "loss 0.1");
}

TEST(BenchUtil, SweepTableCarriesSeedJobsChaosColumns) {
  runner::ExperimentConfig base;
  base.group_size = 16;
  base.ucast_loss = 0.0;
  base.crash_probability = 0.0;
  base.seed = 321;
  base.jobs = 1;
  const runner::SweepResult sweep = runner::run_sweep(
      base, "x", {0.0}, [](runner::ExperimentConfig&, double) {}, 2);
  const runner::Table table = bench::sweep_table(sweep);

  const auto& header = table.header();
  const auto find_column = [&](const std::string& name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    return header.size();
  };
  const std::size_t seed_col = find_column("seed");
  const std::size_t jobs_col = find_column("jobs");
  const std::size_t chaos_col = find_column("chaos");
  ASSERT_LT(seed_col, header.size());
  ASSERT_LT(jobs_col, header.size());
  ASSERT_LT(chaos_col, header.size());
  EXPECT_EQ(table.row(0)[seed_col], "321");
  EXPECT_EQ(table.row(0)[jobs_col], "1");
  EXPECT_EQ(table.row(0)[chaos_col], "-");
}

TEST(BenchUtil, TableToJsonRoundTrips) {
  runner::Table table({"a", "b"});
  table.add_row({"1", "x,y"});
  const std::string json = bench::table_to_json(table, "demo");
  const obs::JsonValue root = obs::json_parse(json);
  EXPECT_EQ(root.string_or("schema", ""), "gridbox-bench-table/1");
  EXPECT_EQ(root.string_or("name", ""), "demo");
  const obs::JsonValue* columns = root.find("columns");
  const obs::JsonValue* rows = root.find("rows");
  ASSERT_NE(columns, nullptr);
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(columns->array.size(), 2u);
  EXPECT_EQ(columns->array[0].string, "a");
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].array[1].string, "x,y");
}

}  // namespace
}  // namespace gridbox
