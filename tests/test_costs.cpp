// Model validation: the closed-form cost predictions must agree with what
// the simulation actually does — the complexity claims of §4/§5/§6.3 as
// checked facts rather than assertions.
#include "src/analysis/costs.h"

#include <gtest/gtest.h>

#include "src/common/ensure.h"
#include "src/runner/experiment.h"

namespace gridbox {
namespace {

using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;
using runner::run_experiment;

TEST(Costs, GossipFormulasMatchKnownValues) {
  // N=200, K=4, M=2, C=1: 4 phases, 8 rounds each, <= 200*32*2 messages.
  const analysis::GossipCosts costs = analysis::gossip_costs(200, 4, 2, 1.0);
  EXPECT_EQ(costs.phases, 4u);
  EXPECT_EQ(costs.rounds_per_phase, 8u);
  EXPECT_EQ(costs.total_rounds, 32u);
  EXPECT_EQ(costs.max_messages, 200u * 32u * 2u);
}

TEST(Costs, GossipRoundsGrowPolyLogarithmically) {
  const auto rounds = [](std::size_t n) {
    return analysis::gossip_costs(n, 4, 2, 1.0).total_rounds;
  };
  // N x64 (64 -> 4096) must grow rounds by far less than x64.
  EXPECT_LT(rounds(4096), rounds(64) * 8);
  // And messages per member = rounds * M is O(log^2 N): sublinear in N.
  EXPECT_LT(static_cast<double>(rounds(4096)) / 4096.0,
            static_cast<double>(rounds(64)) / 64.0);
}

TEST(Costs, DegenerateInputsThrow) {
  EXPECT_THROW((void)analysis::gossip_costs(1, 4, 2, 1.0), PreconditionError);
  EXPECT_THROW((void)analysis::gossip_costs(8, 1, 2, 1.0), PreconditionError);
  EXPECT_THROW((void)analysis::fully_distributed_costs(1, 2),
               PreconditionError);
  EXPECT_THROW((void)analysis::centralized_costs(2, 0), PreconditionError);
}

TEST(CostsValidation, SyncGossipRunMeetsPredictionsExactly) {
  ExperimentConfig config;
  config.group_size = 256;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.gossip.early_bump = false;  // synchronous: exact round counts
  const RunResult r = run_experiment(config);
  const analysis::GossipCosts costs =
      analysis::gossip_costs(256, config.gossip.k, config.gossip.fanout_m,
                             config.gossip.round_multiplier_c);
  EXPECT_EQ(r.measurement.max_rounds, costs.total_rounds);
  EXPECT_LE(r.measurement.network_messages, costs.max_messages);
  // The bound is tight: every member sends M messages in (nearly) every
  // round when its phase peer set is at least M strong.
  EXPECT_GE(r.measurement.network_messages, costs.max_messages / 2);
}

TEST(CostsValidation, AsyncGossipNeverExceedsTheBound) {
  for (const std::size_t n : {64u, 200u, 500u}) {
    ExperimentConfig config;
    config.group_size = n;
    config.ucast_loss = 0.25;
    config.crash_probability = 0.001;
    const RunResult r = run_experiment(config);
    const analysis::GossipCosts costs =
        analysis::gossip_costs(n, config.gossip.k, config.gossip.fanout_m,
                               config.gossip.round_multiplier_c);
    EXPECT_LE(r.measurement.max_rounds, costs.total_rounds) << n;
    EXPECT_LE(r.measurement.network_messages, costs.max_messages) << n;
  }
}

TEST(CostsValidation, FullyDistributedIsExact) {
  ExperimentConfig config;
  config.group_size = 80;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.protocol = ProtocolKind::kFullyDistributed;
  const RunResult r = run_experiment(config);
  const analysis::FullyDistributedCosts costs =
      analysis::fully_distributed_costs(
          80, config.fully_distributed.fanout_m);
  EXPECT_EQ(r.measurement.network_messages, costs.messages);
  // Total rounds = send rounds + drain (the final send round doubles as the
  // first drain round).
  EXPECT_EQ(r.measurement.max_rounds,
            costs.send_rounds + config.fully_distributed.drain_rounds);
}

TEST(CostsValidation, CentralizedIsExactLossless) {
  ExperimentConfig config;
  config.group_size = 60;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.protocol = ProtocolKind::kCentralized;
  const RunResult r = run_experiment(config);
  const analysis::CentralizedCosts costs = analysis::centralized_costs(
      60, config.centralized.dissemination_fanout);
  EXPECT_EQ(r.measurement.network_messages, costs.messages);
}

TEST(CostsValidation, CrossoverAllToAllWinsOnlyWhenTiny) {
  // The paper's motivation: all-to-all is fine for small groups. Find where
  // gossip's message bound undercuts N(N-1): with K=4, M=2, C=1 that is
  // around N ~ 65 (where 2 * total_rounds < N-1).
  const auto gossip_msgs = [](std::size_t n) {
    return analysis::gossip_costs(n, 4, 2, 1.0).max_messages;
  };
  const auto full_msgs = [](std::size_t n) {
    return analysis::fully_distributed_costs(n, 2).messages;
  };
  EXPECT_GT(gossip_msgs(16), full_msgs(16));    // tiny: all-to-all cheaper
  EXPECT_LT(gossip_msgs(256), full_msgs(256));  // large: gossip cheaper
  EXPECT_LT(gossip_msgs(3200), full_msgs(3200) / 15);  // and widening
}

}  // namespace
}  // namespace gridbox
