// Parameterized property sweeps: invariants that must hold across the whole
// (N, K, M, loss) grid, not just at hand-picked points.
#include <gtest/gtest.h>

#include <tuple>

#include "src/runner/experiment.h"

namespace gridbox {
namespace {

using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;
using runner::run_experiment;

// ---------------------------------------------------------------------------
// Invariant 1: lossless + crash-free + a generous gossip budget =>
// near-exact completeness for every hierarchy shape. (Exactness is not
// guaranteed even lossless — the paper's Figure 11 shows small nonzero
// incompleteness from asynchronous phase bumping — but with C = 4 the
// residual is far below half a percent.)
class LosslessExactness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(LosslessExactness, CompletenessIsNearlyOne) {
  const auto [n, k, m] = GetParam();
  ExperimentConfig config;
  config.group_size = n;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.gossip.k = k;
  config.gossip.fanout_m = m;
  // Phase length must scale with K (the analysis uses K·log N rounds): each
  // phase spreads up to K concurrent values, so budget C proportional to K —
  // and doubled again for single-gossipee rounds, which halve the push rate.
  config.gossip.round_multiplier_c = 2.0 * k * (m == 1 ? 2.0 : 1.0);
  config.audit = true;
  const RunResult r = run_experiment(config);
  EXPECT_GE(r.measurement.mean_completeness, 0.995)
      << "N=" << n << " K=" << k << " M=" << m;
  EXPECT_EQ(r.measurement.finished_nodes, n);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LosslessExactness,
    ::testing::Combine(::testing::Values<std::size_t>(8, 50, 128, 300),
                       ::testing::Values<std::uint32_t>(2, 4, 8),
                       ::testing::Values<std::uint32_t>(1, 2, 4)),
    [](const auto& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_K" +
             std::to_string(std::get<1>(info.param)) + "_M" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Invariant 2: under any loss/crash mix, no double counting, count <= N,
// survivors' estimates stay within the true vote range (min/max safety).
class FaultSafety
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FaultSafety, EstimatesAreSaneAndAuditClean) {
  const auto [loss, pf] = GetParam();
  ExperimentConfig config;
  config.group_size = 120;
  config.ucast_loss = loss;
  config.crash_probability = pf;
  config.audit = true;
  config.seed = static_cast<std::uint64_t>(loss * 100 + pf * 10000 + 7);
  const RunResult r = run_experiment(config);

  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_LE(r.measurement.mean_completeness, 1.0);
  EXPECT_GE(r.measurement.mean_completeness, 0.0);
  EXPECT_LE(r.measurement.survivors, 120u);
  // Average estimates live inside the vote range [15, 35): any value outside
  // would indicate corruption rather than mere incompleteness.
  EXPECT_GE(r.measurement.true_value, 15.0);
  EXPECT_LT(r.measurement.true_value, 35.0);
  if (r.measurement.finished_nodes > 0) {
    EXPECT_LE(r.measurement.mean_abs_error, 20.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossCrashGrid, FaultSafety,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.7),
                       ::testing::Values(0.0, 0.002, 0.01)),
    [](const auto& info) {
      return "loss" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_pf" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 1000));
    });

// ---------------------------------------------------------------------------
// Invariant 3: monotonicity in the gossip budget — more rounds per phase
// never hurts (averaged across seeds).
TEST(Monotonicity, MoreGossipRoundsNeverHurt) {
  const auto mean_incompleteness = [](double c) {
    double total = 0.0;
    constexpr int kRuns = 12;
    for (int run = 0; run < kRuns; ++run) {
      ExperimentConfig config;
      config.group_size = 150;
      config.ucast_loss = 0.35;
      config.crash_probability = 0.0;
      config.gossip.round_multiplier_c = c;
      config.seed = 500 + run;
      total += run_experiment(config).measurement.mean_incompleteness;
    }
    return total / kRuns;
  };
  const double at1 = mean_incompleteness(1.0);
  const double at3 = mean_incompleteness(3.0);
  const double at5 = mean_incompleteness(5.0);
  EXPECT_GE(at1, at3 * 0.9);  // allow statistical wiggle
  EXPECT_GE(at3, at5 * 0.9);
  EXPECT_LT(at5, at1 + 1e-12);
}

// Invariant 4: monotonicity in loss — a lossier network can only reduce
// average completeness (averaged across seeds).
TEST(Monotonicity, HigherLossNeverHelps) {
  const auto mean_completeness = [](double loss) {
    double total = 0.0;
    constexpr int kRuns = 12;
    for (int run = 0; run < kRuns; ++run) {
      ExperimentConfig config;
      config.group_size = 150;
      config.ucast_loss = loss;
      config.crash_probability = 0.0;
      config.seed = 900 + run;
      total += run_experiment(config).measurement.mean_completeness;
    }
    return total / kRuns;
  };
  const double at0 = mean_completeness(0.0);
  const double at40 = mean_completeness(0.4);
  const double at70 = mean_completeness(0.7);
  EXPECT_GE(at0 + 1e-9, at40);
  EXPECT_GE(at40 * 1.02, at70);  // wiggle room for seed noise
}

// ---------------------------------------------------------------------------
// Invariant 5: all aggregate kinds agree on coverage — the protocol moves
// partials, so switching the extracted kind must not change completeness.
class KindIndependence : public ::testing::TestWithParam<agg::AggregateKind> {
};

TEST_P(KindIndependence, CompletenessIndependentOfKind) {
  ExperimentConfig config;
  config.group_size = 100;
  config.ucast_loss = 0.3;
  config.crash_probability = 0.0;
  config.seed = 77;
  config.aggregate = GetParam();
  const RunResult r = run_experiment(config);

  ExperimentConfig baseline = config;
  baseline.aggregate = agg::AggregateKind::kAverage;
  const RunResult b = run_experiment(baseline);
  EXPECT_DOUBLE_EQ(r.measurement.mean_completeness,
                   b.measurement.mean_completeness);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, KindIndependence,
    ::testing::Values(agg::AggregateKind::kAverage, agg::AggregateKind::kSum,
                      agg::AggregateKind::kMin, agg::AggregateKind::kMax,
                      agg::AggregateKind::kCount, agg::AggregateKind::kRange,
                      agg::AggregateKind::kStdDev),
    [](const ::testing::TestParamInfo<agg::AggregateKind>& info) {
      return agg::to_string(info.param);
    });

}  // namespace
}  // namespace gridbox
