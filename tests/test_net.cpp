#include "src/net/network.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/common/ensure.h"
#include "src/net/fault_model.h"
#include "src/net/latency_model.h"
#include "src/net/message.h"

namespace gridbox::net {
namespace {

class Recorder final : public Endpoint {
 public:
  void on_message(const Message& message) override {
    received.push_back(message);
  }
  std::vector<Message> received;
};

Message make_message(std::uint32_t from, std::uint32_t to,
                     std::vector<std::uint8_t> bytes = {1, 2, 3}) {
  return Message{MemberId{from}, MemberId{to}, Frame{bytes}};
}

TEST(Frame, EnforcesSizeBoundAtConstruction) {
  // Exactly the bound is a legal payload; one byte over is rejected at
  // construction, before the message can ever reach the wire.
  EXPECT_NO_THROW(Frame{std::vector<std::uint8_t>(kMaxPayloadBytes, 0)});
  EXPECT_THROW(Frame{std::vector<std::uint8_t>(kMaxPayloadBytes + 1, 0)},
               PreconditionError);
}

TEST(Frame, HoldsBytesInline) {
  const Frame f{{10, 20, 30}};
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 10);
  EXPECT_EQ(f[2], 30);
  EXPECT_FALSE(f.empty());
  EXPECT_TRUE(Frame{}.empty());
}

TEST(Frame, TryAppendStopsAtCapacity) {
  Frame f;
  const std::uint8_t chunk[64] = {};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(f.try_append(chunk, sizeof chunk));
  EXPECT_EQ(f.size(), kMaxPayloadBytes);
  EXPECT_FALSE(f.try_append(chunk, 1));  // full: refused, size unchanged
  EXPECT_EQ(f.size(), kMaxPayloadBytes);
}

TEST(Frame, ComparesByContents) {
  EXPECT_EQ((Frame{{1, 2}}), (Frame{{1, 2}}));
  EXPECT_FALSE((Frame{{1, 2}}) == (Frame{{1, 3}}));
  EXPECT_FALSE((Frame{{1, 2}}) == (Frame{{1, 2, 0}}));  // length counts
}

TEST(Message, IsTriviallyCopyable) {
  // The zero-allocation event path depends on messages being plain memcpy-able
  // values: no heap, no ownership, no surprises when events move in the slab.
  static_assert(std::is_trivially_copyable_v<Frame>);
  static_assert(std::is_trivially_copyable_v<Message>);
}

TEST(IndependentLoss, ZeroNeverDrops) {
  IndependentLoss model(0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.drops(MemberId{0}, MemberId{1}, rng));
  }
}

TEST(IndependentLoss, OneAlwaysDrops) {
  IndependentLoss model(1.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(model.drops(MemberId{0}, MemberId{1}, rng));
  }
}

TEST(IndependentLoss, EmpiricalRateMatches) {
  IndependentLoss model(0.25);
  Rng rng(3);
  int drops = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (model.drops(MemberId{0}, MemberId{1}, rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kTrials, 0.25, 0.01);
}

TEST(IndependentLoss, RejectsOutOfRangeProbability) {
  EXPECT_THROW(IndependentLoss{-0.1}, PreconditionError);
  EXPECT_THROW(IndependentLoss{1.1}, PreconditionError);
}

TEST(PartitionLoss, CrossAndWithinRatesDiffer) {
  const auto model = PartitionLoss::split_at(50, 0.0, 1.0);
  Rng rng(4);
  // Within partition (both < 50): never dropped (within_loss = 0).
  EXPECT_FALSE(model->drops(MemberId{1}, MemberId{2}, rng));
  EXPECT_FALSE(model->drops(MemberId{60}, MemberId{70}, rng));
  // Across: always dropped (cross_loss = 1).
  EXPECT_TRUE(model->drops(MemberId{1}, MemberId{60}, rng));
  EXPECT_TRUE(model->drops(MemberId{60}, MemberId{1}, rng));
}

TEST(PartitionLoss, EmpiricalCrossRate) {
  const auto model = PartitionLoss::split_at(10, 0.1, 0.6);
  Rng rng(5);
  int within = 0;
  int cross = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    if (model->drops(MemberId{0}, MemberId{1}, rng)) ++within;
    if (model->drops(MemberId{0}, MemberId{20}, rng)) ++cross;
  }
  EXPECT_NEAR(static_cast<double>(within) / kTrials, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(cross) / kTrials, 0.6, 0.01);
}

TEST(LinkOverrideLoss, OverridesOnlyConfiguredLinks) {
  auto model = std::make_unique<LinkOverrideLoss>(std::make_unique<NoLoss>());
  model->set_link(MemberId{1}, MemberId{2}, 1.0);
  Rng rng(6);
  EXPECT_TRUE(model->drops(MemberId{1}, MemberId{2}, rng));
  EXPECT_FALSE(model->drops(MemberId{2}, MemberId{1}, rng));  // directed
  EXPECT_FALSE(model->drops(MemberId{3}, MemberId{4}, rng));
}

TEST(ConstantLatency, ReturnsConfiguredDelay) {
  ConstantLatency model(SimTime{123});
  Rng rng(7);
  EXPECT_EQ(model.delay(MemberId{0}, MemberId{1}, rng), SimTime{123});
}

TEST(UniformLatency, StaysInRange) {
  UniformLatency model(SimTime{10}, SimTime{20});
  Rng rng(8);
  for (int i = 0; i < 10'000; ++i) {
    const SimTime d = model.delay(MemberId{0}, MemberId{1}, rng);
    ASSERT_GE(d.ticks(), 10);
    ASSERT_LE(d.ticks(), 20);
  }
}

TEST(ExponentialLatency, RespectsBaseAndCap) {
  ExponentialLatency model(SimTime{100}, SimTime{50}, SimTime{200});
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const SimTime d = model.delay(MemberId{0}, MemberId{1}, rng);
    ASSERT_GE(d.ticks(), 100);
    ASSERT_LE(d.ticks(), 300);
  }
}

TEST(DistanceLatency, GrowsWithDistance) {
  const auto pos = [](MemberId m) {
    return m.value() == 0 ? Position{0.0, 0.0} : Position{3.0, 4.0};
  };
  DistanceLatency model(pos, SimTime{10}, SimTime{100});
  Rng rng(10);
  EXPECT_EQ(model.delay(MemberId{0}, MemberId{0}, rng), SimTime{10});
  // Distance 5 -> 10 + 500.
  EXPECT_EQ(model.delay(MemberId{0}, MemberId{1}, rng), SimTime{510});
}

class NetworkTest : public ::testing::Test {
 protected:
  void make_network(std::unique_ptr<FaultModel> faults,
                    SimTime latency = SimTime{5}) {
    network_ = std::make_unique<SimNetwork>(
        simulator_, std::move(faults),
        std::make_unique<ConstantLatency>(latency), Rng{42});
  }

  sim::Simulator simulator_;
  std::unique_ptr<SimNetwork> network_;
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  make_network(std::make_unique<NoLoss>(), SimTime{7});
  Recorder rx;
  network_->attach(MemberId{1}, rx);
  network_->send(make_message(0, 1));
  simulator_.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_EQ(simulator_.now(), SimTime{7});
  EXPECT_EQ(rx.received[0].source, MemberId{0});
  EXPECT_EQ(network_->stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, DropsByFaultModel) {
  make_network(std::make_unique<IndependentLoss>(1.0));
  Recorder rx;
  network_->attach(MemberId{1}, rx);
  for (int i = 0; i < 10; ++i) network_->send(make_message(0, 1));
  simulator_.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(network_->stats().messages_sent, 10u);
  EXPECT_EQ(network_->stats().messages_dropped, 10u);
  EXPECT_EQ(network_->stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, UnattachedDestinationCountsDeadDest) {
  make_network(std::make_unique<NoLoss>());
  network_->send(make_message(0, 9));
  simulator_.run();
  EXPECT_EQ(network_->stats().messages_dead_dest, 1u);
}

TEST_F(NetworkTest, DetachedEndpointMissesInFlightMessages) {
  make_network(std::make_unique<NoLoss>());
  Recorder rx;
  network_->attach(MemberId{1}, rx);
  network_->send(make_message(0, 1));
  network_->detach(MemberId{1});
  simulator_.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(network_->stats().messages_dead_dest, 1u);
}

TEST_F(NetworkTest, LivenessGateBlocksDeliveryAtArrivalTime) {
  make_network(std::make_unique<NoLoss>());
  Recorder rx;
  bool alive = true;
  network_->attach(MemberId{1}, rx);
  network_->set_liveness([&alive](MemberId) { return alive; });
  network_->send(make_message(0, 1));
  // Crash strictly before the delivery event fires.
  simulator_.schedule_at(SimTime{1}, [&alive] { alive = false; });
  simulator_.run();
  EXPECT_TRUE(rx.received.empty());
  EXPECT_EQ(network_->stats().messages_dead_dest, 1u);
}

TEST_F(NetworkTest, SelfSendIsDelivered) {
  make_network(std::make_unique<NoLoss>());
  Recorder rx;
  network_->attach(MemberId{3}, rx);
  network_->send(make_message(3, 3));
  simulator_.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST_F(NetworkTest, BytesAndDistanceAccounting) {
  make_network(std::make_unique<NoLoss>());
  Recorder rx;
  network_->attach(MemberId{1}, rx);
  network_->set_distance([](MemberId, MemberId) { return 2.5; });
  network_->send(make_message(0, 1, {1, 2, 3, 4}));
  network_->send(make_message(0, 1, {1}));
  simulator_.run();
  EXPECT_EQ(network_->stats().bytes_sent, 5u);
  EXPECT_DOUBLE_EQ(network_->stats().link_distance_sum, 5.0);
}

TEST_F(NetworkTest, EmpiricalDeliveryRateTracksLossModel) {
  make_network(std::make_unique<IndependentLoss>(0.3));
  Recorder rx;
  network_->attach(MemberId{1}, rx);
  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) network_->send(make_message(0, 1));
  simulator_.run();
  EXPECT_NEAR(network_->stats().delivery_rate(), 0.7, 0.02);
  EXPECT_EQ(rx.received.size(), network_->stats().messages_delivered);
}

}  // namespace
}  // namespace gridbox::net
