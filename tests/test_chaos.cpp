// Chaos spec parsing/serialization and ChaosSchedule runtime semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/ensure.h"
#include "src/net/chaos.h"
#include "src/net/fault_model.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/runner/cli.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using net::ChaosDecision;
using net::ChaosSchedule;
using net::ChaosSpec;

// ---- spec parsing & serialization -----------------------------------------

TEST(ChaosSpec, EmptyTextParsesToEmptySpec) {
  const ChaosSpec spec = ChaosSpec::parse("");
  EXPECT_TRUE(spec.empty());
  EXPECT_FALSE(spec.affects_network());
  EXPECT_EQ(spec.to_text(), "");
}

TEST(ChaosSpec, CommentsAndBlankLinesAreIgnored) {
  const ChaosSpec spec = ChaosSpec::parse(
      "# a scenario\n"
      "\n"
      "loss 0.25  # iid base loss\n");
  ASSERT_TRUE(spec.base_loss.has_value());
  EXPECT_DOUBLE_EQ(*spec.base_loss, 0.25);
}

TEST(ChaosSpec, FullGrammarRoundTrips) {
  const std::string text =
      "loss 0.2\n"
      "burst 10000us..60000us good=0.05 bad=0.9 go-bad=0.1 go-good=0.3\n"
      "link M3->M7 1\n"
      "jitter p=0.5 0us..2000us\n"
      "dup p=0.25 extra=2 spread=500us\n"
      "partition 5000us..40000us boundary=half cross=0.95 within=0.1\n"
      "crash M5 at=20000us\n";
  const ChaosSpec spec = ChaosSpec::parse(text);
  EXPECT_EQ(spec.to_text(), text);
  EXPECT_EQ(ChaosSpec::parse(spec.to_text()), spec);
  EXPECT_TRUE(spec.affects_network());
  ASSERT_EQ(spec.bursts.size(), 1u);
  EXPECT_EQ(spec.bursts[0].from, SimTime::millis(10));
  ASSERT_EQ(spec.crashes.size(), 1u);
  EXPECT_EQ(spec.crashes[0].member, MemberId{5});
  EXPECT_EQ(spec.crashes[0].at, SimTime::millis(20));
}

TEST(ChaosSpec, TimeSuffixesNormalizeToMicros) {
  const ChaosSpec spec = ChaosSpec::parse("burst 10ms..1s good=0 bad=1 go-bad=0.5 go-good=0.5\n");
  ASSERT_EQ(spec.bursts.size(), 1u);
  EXPECT_EQ(spec.bursts[0].from, SimTime::micros(10'000));
  EXPECT_EQ(spec.bursts[0].to, SimTime::micros(1'000'000));
  // Canonical serialization is always micros.
  EXPECT_NE(spec.to_text().find("10000us..1000000us"), std::string::npos);
}

TEST(ChaosSpec, MalformedSpecsFailWithLineContext) {
  EXPECT_THROW((void)ChaosSpec::parse("loss 1.5\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("loss\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("warp 0.5\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("crash X5 at=1ms\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("burst 5ms..1ms good=0 bad=1 go-bad=0 go-good=0\n"),
               PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("dup p=0.5 extra=0 spread=1ms\n"),
               PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("jitter q=0.5 0us..1ms\n"),
               PreconditionError);
  try {
    (void)ChaosSpec::parse("loss 0.1\nloss nope\n");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ChaosSpec, RandomSpecsRoundTripExactly) {
  // Machine-generated probabilities are full-precision doubles; the spec's
  // canonical text must round-trip them bit-for-bit (fuzz replay depends on
  // the dumped text reproducing the exact run).
  Rng rng(2026);
  for (int i = 0; i < 200; ++i) {
    const ChaosSpec spec =
        net::random_chaos_spec(rng, 64, SimTime::millis(200));
    EXPECT_EQ(ChaosSpec::parse(spec.to_text()), spec) << spec.to_text();
  }
}

// ---- schedule runtime ------------------------------------------------------

ChaosSchedule make_schedule(const std::string& text, SimTime* clock,
                            std::uint64_t seed = 7,
                            std::size_t group_size = 16) {
  ChaosSchedule schedule(ChaosSpec::parse(text),
                         std::make_unique<net::NoLoss>(), group_size,
                         Rng(seed));
  schedule.bind_clock([clock]() { return *clock; });
  return schedule;
}

TEST(ChaosSchedule, LinkLossIsDirectional) {
  SimTime clock = SimTime::zero();
  ChaosSchedule schedule = make_schedule("link M0->M1 1\n", &clock);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
    EXPECT_FALSE(schedule.on_send(MemberId{1}, MemberId{0}).drop);
    EXPECT_FALSE(schedule.on_send(MemberId{0}, MemberId{2}).drop);
  }
}

TEST(ChaosSchedule, PartitionEpochDropsCrossTrafficOnlyWhileActive) {
  SimTime clock = SimTime::zero();
  ChaosSchedule schedule = make_schedule(
      "partition 10ms..20ms boundary=half cross=1\n", &clock);
  // group_size 16: members 0..7 are side 0, 8..15 side 1.
  const MemberId lo{0};
  const MemberId hi{12};
  clock = SimTime::millis(5);  // before the epoch
  EXPECT_FALSE(schedule.on_send(lo, hi).drop);
  clock = SimTime::millis(15);  // inside
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(schedule.on_send(lo, hi).drop);
    EXPECT_TRUE(schedule.on_send(hi, lo).drop);
    EXPECT_FALSE(schedule.on_send(lo, MemberId{7}).drop);   // same side
    EXPECT_FALSE(schedule.on_send(hi, MemberId{15}).drop);  // same side
  }
  clock = SimTime::millis(20);  // window is [from, to)
  EXPECT_FALSE(schedule.on_send(lo, hi).drop);
}

TEST(ChaosSchedule, ExplicitPartitionBoundary) {
  SimTime clock = SimTime::millis(1);
  ChaosSchedule schedule =
      make_schedule("partition 0ms..10ms boundary=3 cross=1\n", &clock);
  EXPECT_TRUE(schedule.on_send(MemberId{2}, MemberId{3}).drop);
  EXPECT_FALSE(schedule.on_send(MemberId{0}, MemberId{2}).drop);
  EXPECT_FALSE(schedule.on_send(MemberId{3}, MemberId{9}).drop);
}

TEST(ChaosSchedule, GilbertElliottStartsGoodAndResetsPerEpoch) {
  // good never drops; the chain flips to bad after the first message and
  // stays there (go-good=0), so: first message in the epoch survives, every
  // later one drops — and re-entering the epoch resets to good.
  SimTime clock = SimTime::millis(5);
  ChaosSchedule schedule = make_schedule(
      "burst 0ms..10ms good=0 bad=1 go-bad=1 go-good=0\n"
      "burst 20ms..30ms good=0 bad=1 go-bad=1 go-good=0\n",
      &clock);
  EXPECT_FALSE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
  }
  clock = SimTime::millis(15);  // gap between epochs: no burst active
  EXPECT_FALSE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
  clock = SimTime::millis(25);  // second epoch: fresh chain, good again
  EXPECT_FALSE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
  EXPECT_TRUE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
}

TEST(ChaosSchedule, JitterIsBoundedAndDupOffsetsNonNegative) {
  SimTime clock = SimTime::zero();
  ChaosSchedule schedule = make_schedule(
      "jitter p=1 1ms..2ms\ndup p=1 extra=2 spread=500us\n", &clock);
  for (int i = 0; i < 100; ++i) {
    const ChaosDecision d = schedule.on_send(MemberId{0}, MemberId{1});
    EXPECT_FALSE(d.drop);
    EXPECT_GE(d.extra_delay, SimTime::millis(1));
    EXPECT_LE(d.extra_delay, SimTime::millis(2));
    ASSERT_EQ(d.duplicate_delays.size(), 2u);
    for (const SimTime offset : d.duplicate_delays) {
      EXPECT_GE(offset, SimTime::zero());
      EXPECT_LE(offset, SimTime::micros(500));
    }
  }
}

TEST(ChaosSchedule, DecisionStreamsAreIndependent) {
  // Adding duplication (or jitter) to a spec must not perturb the drop
  // sequence: each decision kind draws from its own derived stream. This is
  // the property the metamorphic duplication test leans on.
  SimTime clock = SimTime::zero();
  ChaosSchedule plain = make_schedule("loss 0.3\n", &clock);
  ChaosSchedule with_dup = make_schedule(
      "loss 0.3\njitter p=0.5 0us..1ms\ndup p=1 extra=1 spread=0us\n", &clock);
  for (int i = 0; i < 2000; ++i) {
    const MemberId s{static_cast<MemberId::underlying>(i % 16)};
    const MemberId d{static_cast<MemberId::underlying>((i + 3) % 16)};
    EXPECT_EQ(plain.on_send(s, d).drop, with_dup.on_send(s, d).drop);
  }
}

TEST(ChaosSchedule, LossDirectiveReplacesBaseModel) {
  SimTime clock = SimTime::zero();
  // Base model is NoLoss, but the spec scripts loss 1.0: every send drops.
  ChaosSchedule schedule = make_schedule("loss 1\n", &clock);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(schedule.on_send(MemberId{0}, MemberId{1}).drop);
  }
}

// ---- network & world integration ------------------------------------------

TEST(ChaosWorld, DuplicationIsCountedAndHarmless) {
  using protocols::gossip::GossipConfig;
  using protocols::gossip::HierGossipNode;
  testing::WorldOptions options;
  options.chaos = "dup p=1 extra=1 spread=200us\n";
  testing::World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(GossipConfig{});
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_GT(world.network().stats().messages_duplicated, 0u);
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Lossless + duplication: idempotent merges keep every estimate exact.
    EXPECT_EQ(node->outcome().estimate.count(), 16u);
  }
}

TEST(ChaosWorld, ScriptedCrashStopsTheMember) {
  using protocols::gossip::GossipConfig;
  using protocols::gossip::HierGossipNode;
  testing::WorldOptions options;
  options.chaos = "crash M3 at=1ms\n";
  testing::World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(GossipConfig{});
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_FALSE(world.group().is_alive(MemberId{3}));
  EXPECT_FALSE(nodes[3]->finished());
}

TEST(ChaosWorld, TotalPartitionSplitsCoverage) {
  using protocols::gossip::GossipConfig;
  using protocols::gossip::HierGossipNode;
  testing::WorldOptions options;
  options.group_size = 32;
  // Hard partition for the whole run: no estimate can cover both sides.
  options.chaos = "partition 0ms..10s boundary=half cross=1\n";
  testing::World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(GossipConfig{});
  world.start_all(nodes);
  world.simulator().run();

  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_LE(node->outcome().estimate.count(), 16u);
  }
}

TEST(ChaosCli, InlineAndInvalidSpecs) {
  using runner::parse_cli;
  const auto ok = parse_cli({"--chaos", "loss 0.2;crash M3 at=5ms"});
  ASSERT_TRUE(ok.options.has_value());
  const ChaosSpec spec = ChaosSpec::parse(ok.options->config.chaos_spec);
  ASSERT_TRUE(spec.base_loss.has_value());
  EXPECT_DOUBLE_EQ(*spec.base_loss, 0.2);
  ASSERT_EQ(spec.crashes.size(), 1u);

  const auto bad = parse_cli({"--chaos", "loss 2.0"});
  EXPECT_FALSE(bad.options.has_value());
  EXPECT_NE(bad.error.find("--chaos"), std::string::npos);

  const auto flags = parse_cli({"--no-invariants", "--differential"});
  ASSERT_TRUE(flags.options.has_value());
  EXPECT_FALSE(flags.options->config.check_invariants);
  EXPECT_TRUE(flags.options->differential);
}

}  // namespace
}  // namespace gridbox
