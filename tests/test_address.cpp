#include "src/hierarchy/address.h"

#include <gtest/gtest.h>

#include "src/common/ensure.h"

namespace gridbox::hierarchy {
namespace {

TEST(CheckedPow, ComputesSmallPowers) {
  EXPECT_EQ(checked_pow(2, 0), 1u);
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(4, 3), 64u);
  EXPECT_EQ(checked_pow(10, 6), 1'000'000u);
}

TEST(CheckedPow, ThrowsOnOverflow) {
  EXPECT_THROW((void)checked_pow(2, 64), PreconditionError);
  EXPECT_THROW((void)checked_pow(10, 20), PreconditionError);
}

TEST(CheckedPow, RequiresRadixAtLeastTwo) {
  EXPECT_THROW((void)checked_pow(1, 3), PreconditionError);
}

TEST(GridBoxAddress, Base2DigitsMatchPaperExample) {
  // Paper Figure 1: N = 8, K = 2 -> 4 boxes with 2-digit binary addresses.
  EXPECT_EQ(GridBoxAddress(GridBoxId{0}, 2, 2).to_string(), "00");
  EXPECT_EQ(GridBoxAddress(GridBoxId{1}, 2, 2).to_string(), "01");
  EXPECT_EQ(GridBoxAddress(GridBoxId{2}, 2, 2).to_string(), "10");
  EXPECT_EQ(GridBoxAddress(GridBoxId{3}, 2, 2).to_string(), "11");
}

TEST(GridBoxAddress, DigitsAreMostSignificantFirst) {
  const GridBoxAddress b(GridBoxId{6}, 3, 2);  // 110
  EXPECT_EQ(b.digit(0), 1u);
  EXPECT_EQ(b.digit(1), 1u);
  EXPECT_EQ(b.digit(2), 0u);
  EXPECT_THROW((void)b.digit(3), PreconditionError);
}

TEST(GridBoxAddress, RejectsBoxOutOfRange) {
  EXPECT_THROW((GridBoxAddress{GridBoxId{4}, 2, 2}), PreconditionError);
  EXPECT_NO_THROW((GridBoxAddress{GridBoxId{3}, 2, 2}));
}

TEST(GridBoxAddress, Base4Addresses) {
  const GridBoxAddress a(GridBoxId{27}, 3, 4);  // 27 = 123 base 4
  EXPECT_EQ(a.to_string(), "123");
  EXPECT_EQ(a.digit(0), 1u);
  EXPECT_EQ(a.digit(1), 2u);
  EXPECT_EQ(a.digit(2), 3u);
}

TEST(GridBoxAddress, LargeRadixDigitsPrintBracketed) {
  const GridBoxAddress a(GridBoxId{15}, 1, 16);
  EXPECT_EQ(a.to_string(), "[15]");
}

TEST(GridBoxAddress, SameSubtreeMatchesPrefixes) {
  // Figure 1: boxes 00 and 01 share subtree 0*; 00 and 10 only share **.
  const GridBoxAddress b00(GridBoxId{0}, 2, 2);
  const GridBoxAddress b01(GridBoxId{1}, 2, 2);
  const GridBoxAddress b10(GridBoxId{2}, 2, 2);

  EXPECT_TRUE(b00.same_subtree(b00, 0));
  EXPECT_FALSE(b00.same_subtree(b01, 0));
  EXPECT_TRUE(b00.same_subtree(b01, 1));
  EXPECT_FALSE(b00.same_subtree(b10, 1));
  EXPECT_TRUE(b00.same_subtree(b10, 2));
  EXPECT_TRUE(b00.same_subtree(b10, 99));  // root and beyond
}

TEST(GridBoxAddress, SubtreePrefixDropsLowDigits) {
  const GridBoxAddress a(GridBoxId{27}, 3, 4);  // 123 base 4
  EXPECT_EQ(a.subtree_prefix(0), 27u);
  EXPECT_EQ(a.subtree_prefix(1), 6u);   // "12"
  EXPECT_EQ(a.subtree_prefix(2), 1u);   // "1"
  EXPECT_EQ(a.subtree_prefix(3), 0u);   // root
}

TEST(GridBoxAddress, MaskedStringMatchesPaperFigures) {
  const GridBoxAddress b01(GridBoxId{1}, 2, 2);
  EXPECT_EQ(b01.to_string_masked(0), "01");
  EXPECT_EQ(b01.to_string_masked(1), "0*");
  EXPECT_EQ(b01.to_string_masked(2), "**");
}

TEST(GridBoxAddress, MixedHierarchyComparisonThrows) {
  const GridBoxAddress a(GridBoxId{0}, 2, 2);
  const GridBoxAddress b(GridBoxId{0}, 3, 2);
  EXPECT_THROW((void)a.same_subtree(b, 1), PreconditionError);
}

TEST(GridBoxAddress, ZeroDigitAddress) {
  // A single-box hierarchy has zero-digit addresses; everything is root.
  const GridBoxAddress a(GridBoxId{0}, 0, 4);
  EXPECT_EQ(a.to_string(), "");
  EXPECT_EQ(a.subtree_prefix(0), 0u);
  EXPECT_TRUE(a.same_subtree(a, 0));
}

}  // namespace
}  // namespace gridbox::hierarchy
