#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gridbox {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(SplitMix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) outputs.insert(splitmix64(i));
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(15);
  EXPECT_THROW((void)rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(16);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(0, 9)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, IndexRequiresPositiveN) {
  Rng rng(17);
  EXPECT_THROW((void)rng.index(0), PreconditionError);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(20);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(21);
  EXPECT_THROW((void)rng.exponential(0.0), PreconditionError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(22);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(24);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.sample_indices(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const std::size_t i : sample) EXPECT_LT(i, 50u);
  }
}

TEST(Rng, SampleIndicesKAtLeastNReturnsAll) {
  Rng rng(25);
  const auto sample = rng.sample_indices(5, 10);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesIsUniform) {
  // Each index should appear in a k-of-n sample with probability k/n.
  Rng rng(26);
  constexpr int kTrials = 50'000;
  std::vector<int> hits(8, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (const std::size_t i : rng.sample_indices(8, 2)) ++hits[i];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kTrials, 0.25, 0.02);
  }
}

TEST(Rng, DeriveIsDeterministicAndIndependent) {
  const Rng root(99);
  Rng a1 = root.derive(1);
  Rng a2 = root.derive(1);
  Rng b = root.derive(2);
  int equal_ab = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a1.raw();
    EXPECT_EQ(va, a2.raw());
    if (va == b.raw()) ++equal_ab;
  }
  EXPECT_LT(equal_ab, 5);
}

}  // namespace
}  // namespace gridbox
