// Deterministic fuzz: hammer protocol nodes with random byte payloads mixed
// into a live run. Nothing may crash, hang, or corrupt the aggregate
// (malformed frames count as malformed; well-formed-by-luck frames may be
// absorbed, but audit tokens of kNoAuditToken keep the audit conservative).
#include <gtest/gtest.h>

#include "src/net/chaos.h"
#include "src/protocols/baseline/fully_distributed.h"
#include "src/protocols/baseline/leader_election.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/runner/experiment.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

// Injects `count` random payloads (random sizes up to the bound, random
// source/destination) spread over the first 200ms of the run.
void inject_garbage(World& world, std::size_t count, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  const std::size_t n = world.group().size();
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime at = SimTime::micros(static_cast<SimTime::underlying>(
        rng->uniform_int(0, 200'000)));
    world.simulator().schedule_at(at, [&world, rng, n]() {
      std::vector<std::uint8_t> bytes(rng->uniform_int(0, 64));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng->raw());
      world.network().send(net::Message{
          MemberId{static_cast<MemberId::underlying>(rng->index(n))},
          MemberId{static_cast<MemberId::underlying>(rng->index(n))},
          net::Frame{bytes}});
    });
  }
}

TEST(Fuzz, GossipSurvivesRandomPayloadStorm) {
  WorldOptions options;
  options.group_size = 48;
  options.k = 4;
  // Forged frames that decode as votes by luck can carry out-of-range
  // origins — a *wire-garbage* artifact the invariant checker rightly flags
  // as protocol-illegal. This test is about surviving garbage, so the
  // checker stays off; the chaos corpus below runs protocol-legal adversity
  // with it on.
  options.invariants = false;
  World world(options);
  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.round_multiplier_c = 2.0;
  auto nodes = world.make_nodes<protocols::gossip::HierGossipNode>(config);
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF122);
  ASSERT_NO_THROW(world.simulator().run());

  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // The occasional random frame that decodes as a valid vote can add a
    // phantom origin, but garbage cannot blow coverage up.
    EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
  }
}

TEST(Fuzz, LeaderBaselineSurvivesRandomPayloadStorm) {
  // Random frames occasionally decode as valid-looking votes with forged
  // audit tokens, so the audit may report unknown tokens (and, through
  // token collisions, spurious "violations"); the hard requirements are:
  // no crash, no coverage inflation.
  WorldOptions options;
  options.group_size = 48;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<protocols::baseline::LeaderElectionNode>(
      protocols::baseline::CommitteeConfig{});
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF123);
  ASSERT_NO_THROW(world.simulator().run());
  for (const auto& node : nodes) {
    if (node->finished()) {
      EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
    }
  }
}

TEST(Fuzz, FullyDistributedSurvivesRandomPayloadStorm) {
  WorldOptions options;
  options.group_size = 48;
  World world(options);
  auto nodes = world.make_nodes<protocols::baseline::FullyDistributedNode>(
      protocols::baseline::FullyDistributedConfig{});
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF124);
  ASSERT_NO_THROW(world.simulator().run());
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Forged vote frames can add phantom origins, but only a handful decode
    // by luck; coverage cannot explode.
    EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
  }
}

// ---- chaos seed corpus ------------------------------------------------------
//
// 32 random ChaosSchedule scripts × all four protocols, audited, with the
// invariant checker on (generated specs contain only protocol-legal
// adversity: loss, bursts, links, jitter, duplication, partitions, crashes
// — never forged bytes). Any violation dumps the offending spec text so the
// exact scenario replays from the failure message alone.
TEST(Fuzz, ChaosCorpusHoldsInvariantsAcrossAllProtocols) {
  static constexpr runner::ProtocolKind kProtocols[] = {
      runner::ProtocolKind::kHierGossip,
      runner::ProtocolKind::kFullyDistributed,
      runner::ProtocolKind::kCentralized,
      runner::ProtocolKind::kCommittee,
  };
  Rng corpus_rng(0xC405);
  for (std::size_t i = 0; i < 32; ++i) {
    const net::ChaosSpec spec =
        net::random_chaos_spec(corpus_rng, 24, SimTime::millis(150));
    for (const runner::ProtocolKind protocol : kProtocols) {
      runner::ExperimentConfig config;
      config.protocol = protocol;
      config.group_size = 24;
      config.ucast_loss = 0.0;
      config.crash_probability = 0.0;
      config.audit = true;
      config.seed = 0x9000 + i;
      config.chaos_spec = spec.to_text();
      try {
        const runner::RunResult result = runner::run_experiment(config);
        EXPECT_EQ(result.measurement.audit_violations, 0u)
            << "double counting under spec " << i << " ("
            << to_string(protocol) << "):\n"
            << spec.to_text();
        EXPECT_EQ(result.measurement.reconstruction_failures, 0u)
            << "unfaithful estimate under spec " << i << " ("
            << to_string(protocol) << "):\n"
            << spec.to_text();
      } catch (const std::exception& e) {
        ADD_FAILURE() << "spec " << i << " (" << to_string(protocol)
                      << ") violated a run invariant: " << e.what()
                      << "\nreplay spec:\n"
                      << spec.to_text();
      }
    }
  }
}

}  // namespace
}  // namespace gridbox
