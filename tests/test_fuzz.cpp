// Deterministic fuzz: hammer protocol nodes with random byte payloads mixed
// into a live run. Nothing may crash, hang, or corrupt the aggregate
// (malformed frames count as malformed; well-formed-by-luck frames may be
// absorbed, but audit tokens of kNoAuditToken keep the audit conservative).
#include <gtest/gtest.h>

#include "src/protocols/baseline/fully_distributed.h"
#include "src/protocols/baseline/leader_election.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

// Injects `count` random payloads (random sizes up to the bound, random
// source/destination) spread over the first 200ms of the run.
void inject_garbage(World& world, std::size_t count, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  const std::size_t n = world.group().size();
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime at = SimTime::micros(static_cast<SimTime::underlying>(
        rng->uniform_int(0, 200'000)));
    world.simulator().schedule_at(at, [&world, rng, n]() {
      std::vector<std::uint8_t> bytes(rng->uniform_int(0, 64));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng->raw());
      world.network().send(net::Message{
          MemberId{static_cast<MemberId::underlying>(rng->index(n))},
          MemberId{static_cast<MemberId::underlying>(rng->index(n))},
          net::Payload{std::move(bytes)}});
    });
  }
}

TEST(Fuzz, GossipSurvivesRandomPayloadStorm) {
  WorldOptions options;
  options.group_size = 48;
  options.k = 4;
  World world(options);
  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.round_multiplier_c = 2.0;
  auto nodes = world.make_nodes<protocols::gossip::HierGossipNode>(config);
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF122);
  ASSERT_NO_THROW(world.simulator().run());

  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // The occasional random frame that decodes as a valid vote can add a
    // phantom origin, but garbage cannot blow coverage up.
    EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
  }
}

TEST(Fuzz, LeaderBaselineSurvivesRandomPayloadStorm) {
  // Random frames occasionally decode as valid-looking votes with forged
  // audit tokens, so the audit may report unknown tokens (and, through
  // token collisions, spurious "violations"); the hard requirements are:
  // no crash, no coverage inflation.
  WorldOptions options;
  options.group_size = 48;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<protocols::baseline::LeaderElectionNode>(
      protocols::baseline::CommitteeConfig{});
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF123);
  ASSERT_NO_THROW(world.simulator().run());
  for (const auto& node : nodes) {
    if (node->finished()) {
      EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
    }
  }
}

TEST(Fuzz, FullyDistributedSurvivesRandomPayloadStorm) {
  WorldOptions options;
  options.group_size = 48;
  World world(options);
  auto nodes = world.make_nodes<protocols::baseline::FullyDistributedNode>(
      protocols::baseline::FullyDistributedConfig{});
  world.start_all(nodes);
  inject_garbage(world, 2000, 0xF124);
  ASSERT_NO_THROW(world.simulator().run());
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Forged vote frames can add phantom origins, but only a handful decode
    // by luck; coverage cannot explode.
    EXPECT_LE(node->outcome().estimate.count(), 48u + 8u);
  }
}

}  // namespace
}  // namespace gridbox
