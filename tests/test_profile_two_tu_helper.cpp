// Second translation unit of the ProfileCollector cross-TU regression test
// (see test_profile_two_tu.cpp). Records into a section whose name has the
// same *content* as the one in the test TU but — being a namespace-scope
// array, not a string literal the linker may pool — a guaranteed different
// address.
#include <cstdint>

#include "src/obs/profile.h"

namespace gridbox::obs::two_tu_test {

namespace {
const char kSection[] = "twotu.section";
}  // namespace

const char* helper_section_name() { return kSection; }

void helper_record(std::uint64_t ns) {
  if (ProfileCollector* collector = ProfileCollector::current()) {
    collector->record(kSection, ns);
  }
}

}  // namespace gridbox::obs::two_tu_test
