// Service subsystem tests (ctest labels tier1 + service): the instance
// envelope's strict decoder, the InstanceMux demux discipline (unknown /
// retired / malformed frames are counted and dropped, never delivered,
// never a crash), the join/recover chaos grammar, the one-shot runners'
// churn rejection, and the streaming service engine on the simulator
// substrate — determinism, churn epoch boundaries, and the multi-instance
// lineage container.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/ensure.h"
#include "src/net/chaos.h"
#include "src/net/fault_model.h"
#include "src/runner/experiment.h"
#include "src/service/envelope.h"
#include "src/service/mux.h"
#include "src/service/service.h"

namespace gridbox {
namespace {

using net::ChaosSpec;
using service::EnvelopeError;

// ---- envelope --------------------------------------------------------------

TEST(Envelope, WrapUnwrapRoundTripsPayloadAndInstanceId) {
  const net::Frame inner{1, 2, 3, 0xFF};
  const net::Frame outer = service::envelope_wrap(0xDEADBEEF, inner);
  ASSERT_EQ(outer.size(), service::kEnvelopeBytes + inner.size());

  std::uint32_t instance = 0;
  net::Frame unwrapped;
  ASSERT_EQ(service::envelope_unwrap(outer, instance, unwrapped),
            EnvelopeError::kOk);
  EXPECT_EQ(instance, 0xDEADBEEFu);
  ASSERT_EQ(unwrapped.size(), inner.size());
  EXPECT_EQ(std::memcmp(unwrapped.data(), inner.data(), inner.size()), 0);
}

TEST(Envelope, EmptyPayloadRoundTrips) {
  const net::Frame outer = service::envelope_wrap(7, net::Frame{});
  ASSERT_EQ(outer.size(), service::kEnvelopeBytes);
  std::uint32_t instance = 0;
  net::Frame inner{9, 9};  // must be overwritten
  ASSERT_EQ(service::envelope_unwrap(outer, instance, inner),
            EnvelopeError::kOk);
  EXPECT_EQ(instance, 7u);
  EXPECT_EQ(inner.size(), 0u);
}

TEST(Envelope, EveryHeaderFieldIsStrictlyValidated) {
  const net::Frame good = service::envelope_wrap(3, net::Frame{42});
  std::uint32_t instance = 99;
  net::Frame inner;

  // Too short: every prefix shorter than the header.
  for (std::size_t size = 0; size < service::kEnvelopeBytes; ++size) {
    const net::Frame prefix(good.data(), size);
    EXPECT_EQ(service::envelope_unwrap(prefix, instance, inner),
              EnvelopeError::kTooShort)
        << "size " << size;
  }

  const auto corrupt = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bytes(good.data(), good.data() + good.size());
    bytes[offset] = value;
    return net::Frame(bytes);
  };
  EXPECT_EQ(service::envelope_unwrap(corrupt(0, 0x00), instance, inner),
            EnvelopeError::kBadMagic);
  EXPECT_EQ(service::envelope_unwrap(corrupt(1, 0x00), instance, inner),
            EnvelopeError::kBadMagic);
  EXPECT_EQ(service::envelope_unwrap(corrupt(2, 2), instance, inner),
            EnvelopeError::kBadVersion);
  EXPECT_EQ(service::envelope_unwrap(corrupt(3, 1), instance, inner),
            EnvelopeError::kBadReserved);

  // Failure leaves the out-parameters untouched.
  EXPECT_EQ(instance, 99u);
  EXPECT_EQ(inner.size(), 0u);

  for (const EnvelopeError e :
       {EnvelopeError::kOk, EnvelopeError::kTooShort, EnvelopeError::kBadMagic,
        EnvelopeError::kBadVersion, EnvelopeError::kBadReserved}) {
    EXPECT_FALSE(service::to_string(e).empty());
  }
}

// ---- mux demux discipline --------------------------------------------------

/// Synchronous loopback transport: send() delivers to the attached endpoint
/// immediately. Just enough raw transport for the mux to sit on.
class LoopTransport final : public net::Transport {
 public:
  void attach(MemberId id, net::Endpoint& endpoint) override {
    endpoints_[id.value()] = &endpoint;
  }
  void detach(MemberId id) override { endpoints_.erase(id.value()); }
  void send(net::Message message) override {
    ++stats_.messages_sent;
    const auto it = endpoints_.find(message.destination.value());
    if (it == endpoints_.end()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second->on_message(message);
  }
  [[nodiscard]] const net::NetworkStats& stats() const override {
    return stats_;
  }

 private:
  std::map<MemberId::underlying, net::Endpoint*> endpoints_;
  net::NetworkStats stats_;
};

struct RecordingEndpoint final : net::Endpoint {
  std::vector<net::Message> got;
  void on_message(const net::Message& message) override {
    got.push_back(message);
  }
};

TEST(InstanceMux, StrictDemuxCountsAndDropsWithoutDelivering) {
  LoopTransport raw;
  service::InstanceMux mux(
      {.group_size = 2, .transport_of = [&](MemberId) { return &raw; }});
  mux.attach_all();

  auto sender = mux.open_instance(0);
  RecordingEndpoint member0;
  sender->attach(MemberId{0}, member0);

  const net::Frame inner{1, 2, 3};
  const auto to_member0 = [&](const net::Frame& frame) {
    raw.send(net::Message{MemberId{1}, MemberId{0}, frame});
  };

  // Valid frame for the open instance: delivered, envelope stripped.
  to_member0(service::envelope_wrap(0, inner));
  ASSERT_EQ(member0.got.size(), 1u);
  EXPECT_EQ(member0.got[0].frame.size(), inner.size());
  EXPECT_EQ(mux.stats().delivered, 1u);

  // Unknown instance id (never opened): counted, dropped, no crash.
  to_member0(service::envelope_wrap(5, inner));
  EXPECT_EQ(mux.stats().unknown_instance, 1u);

  // Malformed envelopes: a bare unwrapped frame and a truncated header.
  to_member0(inner);
  to_member0(net::Frame{0x58, 0x4D});
  EXPECT_EQ(mux.stats().malformed_envelope, 2u);

  // Live instance, member without a route (a non-participant).
  auto sender1 = mux.open_instance(1);
  raw.send(net::Message{MemberId{0}, MemberId{1},
                        service::envelope_wrap(1, inner)});
  EXPECT_EQ(mux.stats().unrouted_member, 1u);

  // Retired instance: opened, since closed.
  mux.close_instance(0);
  to_member0(service::envelope_wrap(0, inner));
  EXPECT_EQ(mux.stats().retired_instance, 1u);

  // Sends through a closed instance's sender drop at the mux and never
  // reach the raw transport (the final-phase linger path).
  const std::uint64_t raw_sends = raw.stats().messages_sent;
  sender->send(net::Message{MemberId{0}, MemberId{0}, inner});
  EXPECT_EQ(mux.stats().closed_sends, 1u);
  EXPECT_EQ(raw.stats().messages_sent, raw_sends);

  // Nothing beyond the first valid frame was ever delivered.
  EXPECT_EQ(member0.got.size(), 1u);
  EXPECT_EQ(mux.stats().delivered, 1u);
  EXPECT_EQ(mux.instances_opened(), 2u);
  EXPECT_TRUE(mux.is_open(1));
  EXPECT_FALSE(mux.is_open(0));
  mux.detach_all();
  (void)sender1;
}

TEST(InstanceMux, SenderWrapsTheInstanceEnvelopeAndKeepsPerInstanceStats) {
  LoopTransport raw;
  service::InstanceMux mux(
      {.group_size = 2, .transport_of = [&](MemberId) { return &raw; }});
  mux.attach_all();

  auto sender0 = mux.open_instance(0);
  auto sender1 = mux.open_instance(1);
  RecordingEndpoint a0;
  RecordingEndpoint a1;
  sender0->attach(MemberId{1}, a0);
  sender1->attach(MemberId{1}, a1);

  sender0->send(net::Message{MemberId{0}, MemberId{1}, net::Frame{7}});
  sender0->send(net::Message{MemberId{0}, MemberId{1}, net::Frame{8}});
  sender1->send(net::Message{MemberId{0}, MemberId{1}, net::Frame{9}});

  // Each instance sees only its own traffic, with the envelope stripped.
  ASSERT_EQ(a0.got.size(), 2u);
  ASSERT_EQ(a1.got.size(), 1u);
  EXPECT_EQ(a0.got[0].frame.data()[0], 7);
  EXPECT_EQ(a1.got[0].frame.data()[0], 9);
  EXPECT_EQ(sender0->stats().messages_sent, 2u);
  EXPECT_EQ(sender1->stats().messages_sent, 1u);
  EXPECT_EQ(mux.stats().delivered, 3u);
  mux.detach_all();
}

// ---- join/recover grammar --------------------------------------------------

TEST(ChaosChurn, JoinRecoverParseAndRoundTripCanonically) {
  const std::string text =
      "loss 0.1\ncrash M3 at=30000us\njoin M7 at=60000us\n"
      "recover M3 at=200000us\n";
  const ChaosSpec spec = ChaosSpec::parse("loss 0.1\ncrash M3 at=30ms\n"
                                          "join M7 at=60ms\n"
                                          "recover M3 at=200ms\n");
  ASSERT_EQ(spec.joins.size(), 1u);
  EXPECT_EQ(spec.joins[0].member, MemberId{7});
  EXPECT_EQ(spec.joins[0].at, SimTime::millis(60));
  ASSERT_EQ(spec.recovers.size(), 1u);
  EXPECT_EQ(spec.recovers[0].member, MemberId{3});
  EXPECT_EQ(spec.recovers[0].at, SimTime::millis(200));
  EXPECT_TRUE(spec.has_churn());
  EXPECT_FALSE(spec.empty());
  EXPECT_EQ(spec.to_text(), text);
  EXPECT_EQ(ChaosSpec::parse(spec.to_text()), spec);
}

TEST(ChaosChurn, ChurnAloneDoesNotAffectTheNetwork) {
  const ChaosSpec spec = ChaosSpec::parse("join M1 at=5ms\n");
  EXPECT_TRUE(spec.has_churn());
  EXPECT_FALSE(spec.affects_network());
  EXPECT_FALSE(spec.empty());
  EXPECT_FALSE(ChaosSpec::parse("loss 0.1\n").has_churn());
}

TEST(ChaosChurn, MalformedChurnLinesFailWithLineContext) {
  EXPECT_THROW((void)ChaosSpec::parse("join X5 at=1ms\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("join M5\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("recover M5 at=\n"), PreconditionError);
  EXPECT_THROW((void)ChaosSpec::parse("recover at=1ms\n"), PreconditionError);
}

TEST(ChaosChurn, ChurnDirectivesPerturbNoRngStream) {
  // Scripted churn must not shift the drop pattern of an otherwise
  // identical spec — the metamorphic discipline the chaos layer guarantees
  // for every non-random directive.
  SimTime clock = SimTime::zero();
  net::ChaosSchedule plain(ChaosSpec::parse("loss 0.3\n"),
                           std::make_unique<net::NoLoss>(), 16, Rng(7));
  net::ChaosSchedule churned(
      ChaosSpec::parse("loss 0.3\njoin M1 at=5ms\nrecover M2 at=9ms\n"),
      std::make_unique<net::NoLoss>(), 16, Rng(7));
  plain.bind_clock([&] { return clock; });
  churned.bind_clock([&] { return clock; });
  for (int i = 0; i < 200; ++i) {
    clock = SimTime::micros(static_cast<SimTime::underlying>(i) * 100);
    const MemberId src{static_cast<MemberId::underlying>(i % 16)};
    const MemberId dst{static_cast<MemberId::underlying>((i + 3) % 16)};
    EXPECT_EQ(plain.on_send(src, dst).drop, churned.on_send(src, dst).drop)
        << "send " << i;
  }
}

TEST(ChaosChurn, OneShotRunnersRejectChurnSpecs) {
  runner::ExperimentConfig config;
  config.group_size = 16;
  config.chaos_spec = "join M1 at=5ms\n";
  EXPECT_THROW((void)runner::run_experiment(config), PreconditionError);
  config.chaos_spec = "recover M1 at=5ms\n";
  EXPECT_THROW((void)runner::run_experiment(config), PreconditionError);
}

// ---- the service engine on the simulator substrate -------------------------

[[nodiscard]] service::ServiceConfig small_service() {
  service::ServiceConfig sc;
  sc.experiment.group_size = 32;
  sc.experiment.seed = 11;
  sc.experiment.ucast_loss = 0.05;
  sc.experiment.crash_probability = 0.0;
  sc.experiment.audit = true;
  sc.experiment.gossip.round_duration = SimTime::millis(2);
  sc.instances = 6;
  sc.epoch_interval = SimTime::millis(5);
  sc.max_in_flight = 3;
  return sc;
}

TEST(ServiceEngine, StreamsInstancesAuditCleanWithBoundedWindow) {
  const service::ServiceResult result =
      service::run_service_experiment(small_service());
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.instances.size(), 6u);
  EXPECT_EQ(result.metrics.launched, 6u);
  EXPECT_EQ(result.metrics.completed, 6u);
  EXPECT_EQ(result.metrics.failed, 0u);
  // Window 3 against 6 epochs on a cadence faster than a run: the later
  // launches must have been deferred at their due time.
  EXPECT_GT(result.metrics.deferred, 0u);
  EXPECT_GT(result.metrics.instances_per_sec, 0.0);
  EXPECT_GE(result.metrics.p99_completion, result.metrics.p50_completion);
  EXPECT_GT(result.metrics.demux.delivered, 0u);
  EXPECT_EQ(result.metrics.demux.malformed_envelope, 0u);
  EXPECT_EQ(result.metrics.demux.unknown_instance, 0u);
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    const service::InstanceResult& inst = result.instances[i];
    EXPECT_EQ(inst.id, i);  // sorted by id
    EXPECT_TRUE(inst.completed) << "instance " << i;
    EXPECT_EQ(inst.participants, 32u);
    EXPECT_EQ(inst.measurement.audit_violations, 0u) << "instance " << i;
    EXPECT_EQ(inst.measurement.reconstruction_failures, 0u)
        << "instance " << i;
    EXPECT_EQ(inst.invariant_violations, 0u)
        << "instance " << i << ": " << inst.first_violation;
    EXPECT_GT(inst.network.messages_sent, 0u);
    EXPECT_GE(inst.completed_at, inst.launched_at);
  }
}

TEST(ServiceEngine, IdenticalConfigsProduceBitIdenticalStreams) {
  const service::ServiceResult a =
      service::run_service_experiment(small_service());
  const service::ServiceResult b =
      service::run_service_experiment(small_service());
  ASSERT_EQ(a.instances.size(), b.instances.size());
  EXPECT_EQ(a.elapsed, b.elapsed);
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].measurement.true_value,
              b.instances[i].measurement.true_value)
        << "instance " << i;
    EXPECT_EQ(a.instances[i].measurement.mean_completeness,
              b.instances[i].measurement.mean_completeness);
    EXPECT_EQ(a.instances[i].completed_at, b.instances[i].completed_at);
    EXPECT_EQ(a.instances[i].network.messages_sent,
              b.instances[i].network.messages_sent);
  }
}

TEST(ServiceEngine, InstancesDrawIndependentWorlds) {
  // Different instances aggregate different votes: their true values are
  // derived from independent per-instance RNG worlds, not shared state.
  const service::ServiceResult result =
      service::run_service_experiment(small_service());
  ASSERT_GE(result.instances.size(), 2u);
  EXPECT_NE(result.instances[0].measurement.true_value,
            result.instances[1].measurement.true_value);
}

TEST(ServiceEngine, JoinersEnterAtTheNextEpochBoundary) {
  service::ServiceConfig sc;
  sc.experiment.group_size = 16;
  sc.experiment.seed = 3;
  sc.experiment.ucast_loss = 0.0;
  sc.experiment.crash_probability = 0.0;
  sc.experiment.audit = true;
  sc.experiment.gossip.round_duration = SimTime::millis(2);
  sc.experiment.chaos_spec = "join M3 at=15ms\n";
  sc.instances = 4;
  sc.epoch_interval = SimTime::millis(10);
  sc.max_in_flight = 4;

  const service::ServiceResult result = service::run_service_experiment(sc);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.instances.size(), 4u);
  // Epochs are due at 0/10/20/30 ms; M3 joins at 15 ms, so the first two
  // cohorts exclude it and the later ones include it.
  EXPECT_EQ(result.instances[0].participants, 15u);
  EXPECT_EQ(result.instances[1].participants, 15u);
  EXPECT_EQ(result.instances[2].participants, 16u);
  EXPECT_EQ(result.instances[3].participants, 16u);
  for (const service::InstanceResult& inst : result.instances) {
    EXPECT_EQ(inst.measurement.audit_violations, 0u);
    EXPECT_EQ(inst.invariant_violations, 0u) << inst.first_violation;
  }
}

TEST(ServiceEngine, RecoverReentersACrashedMemberAtAnEpochBoundary) {
  service::ServiceConfig sc;
  sc.experiment.group_size = 16;
  sc.experiment.seed = 5;
  sc.experiment.ucast_loss = 0.0;
  sc.experiment.crash_probability = 0.0;
  sc.experiment.audit = true;
  sc.experiment.gossip.round_duration = SimTime::millis(2);
  sc.experiment.chaos_spec = "crash M2 at=5ms\nrecover M2 at=25ms\n";
  sc.instances = 4;
  sc.epoch_interval = SimTime::millis(10);
  sc.max_in_flight = 4;

  const service::ServiceResult result = service::run_service_experiment(sc);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.instances.size(), 4u);
  // Cohorts at 0/10/20/30 ms: full, crashed, crashed, recovered.
  EXPECT_EQ(result.instances[0].participants, 16u);
  EXPECT_EQ(result.instances[1].participants, 15u);
  EXPECT_EQ(result.instances[2].participants, 15u);
  EXPECT_EQ(result.instances[3].participants, 16u);
}

TEST(ServiceEngine, LineageCollectsOneDocumentPerInstance) {
  service::ServiceConfig sc = small_service();
  sc.instances = 2;
  sc.collect_lineage = true;
  const service::ServiceResult result = service::run_service_experiment(sc);
  ASSERT_TRUE(result.completed);
  for (const service::InstanceResult& inst : result.instances) {
    EXPECT_NE(inst.lineage_json.find("gridbox-lineage/1"), std::string::npos);
  }
  const std::string multi = service::lineage_multi_json(result.instances);
  EXPECT_NE(multi.find("gridbox-lineage-multi/1"), std::string::npos);
  EXPECT_NE(multi.find("\"id\":0"), std::string::npos);
  EXPECT_NE(multi.find("\"id\":1"), std::string::npos);
}

}  // namespace
}  // namespace gridbox
