#include "src/hierarchy/hierarchy.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/ensure.h"
#include "src/hashing/fair_hash.h"

namespace gridbox::hierarchy {
namespace {

std::vector<MemberId> member_range(std::size_t n) {
  std::vector<MemberId> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  return out;
}

TEST(GridBoxHierarchy, PaperExampleDimensions) {
  // N = 8, K = 2: 4 grid boxes, 2-digit addresses, 3 phases (Figure 1/2).
  hashing::FairHash hash(1);
  GridBoxHierarchy h(8, 2, hash);
  EXPECT_EQ(h.num_boxes(), 4u);
  EXPECT_EQ(h.digit_count(), 2u);
  EXPECT_EQ(h.num_phases(), 3u);
}

TEST(GridBoxHierarchy, DefaultEvaluationSetup) {
  // N = 200, K = 4: ceil(log4 200) = 4 phases, 64 boxes.
  hashing::FairHash hash(1);
  GridBoxHierarchy h(200, 4, hash);
  EXPECT_EQ(h.num_phases(), 4u);
  EXPECT_EQ(h.num_boxes(), 64u);
}

TEST(GridBoxHierarchy, ExactPowersUseExactLogs) {
  hashing::FairHash hash(1);
  EXPECT_EQ(GridBoxHierarchy(16, 2, hash).num_phases(), 4u);
  EXPECT_EQ(GridBoxHierarchy(17, 2, hash).num_phases(), 5u);
  EXPECT_EQ(GridBoxHierarchy(64, 4, hash).num_phases(), 3u);
  EXPECT_EQ(GridBoxHierarchy(65, 4, hash).num_phases(), 4u);
}

TEST(GridBoxHierarchy, TinyGroupsCollapseToOneBox) {
  hashing::FairHash hash(1);
  GridBoxHierarchy h(3, 4, hash);
  EXPECT_EQ(h.num_phases(), 1u);
  EXPECT_EQ(h.num_boxes(), 1u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.box_of(MemberId{i}).value(), 0u);
  }
}

TEST(GridBoxHierarchy, RejectsDegenerateParameters) {
  hashing::FairHash hash(1);
  EXPECT_THROW(GridBoxHierarchy(0, 4, hash), PreconditionError);
  EXPECT_THROW(GridBoxHierarchy(8, 1, hash), PreconditionError);
}

TEST(GridBoxHierarchy, EveryMemberMapsToAValidBox) {
  hashing::FairHash hash(2);
  GridBoxHierarchy h(1000, 4, hash);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_LT(h.box_of(MemberId{i}).value(), h.num_boxes());
  }
}

TEST(GridBoxHierarchy, PhaseGroupIsPrefixOfBox) {
  hashing::FairHash hash(3);
  GridBoxHierarchy h(256, 4, hash);  // 4 phases, 64 boxes
  const MemberId m{17};
  const std::uint64_t box = h.box_of(m).value();
  EXPECT_EQ(h.phase_group(m, 1), box);
  EXPECT_EQ(h.phase_group(m, 2), box / 4);
  EXPECT_EQ(h.phase_group(m, 3), box / 16);
  EXPECT_EQ(h.phase_group(m, 4), 0u);  // root: everyone together
}

TEST(GridBoxHierarchy, RootPhaseUnitesEveryone) {
  hashing::FairHash hash(4);
  GridBoxHierarchy h(500, 4, hash);
  for (std::uint32_t i = 1; i < 500; ++i) {
    EXPECT_TRUE(h.same_phase_group(MemberId{0}, MemberId{i}, h.num_phases()));
  }
}

TEST(GridBoxHierarchy, PhaseGroupsAreNested) {
  // Same group at phase p implies same group at every phase > p.
  hashing::FairHash hash(5);
  GridBoxHierarchy h(300, 4, hash);
  for (std::uint32_t a = 0; a < 50; ++a) {
    for (std::uint32_t b = a + 1; b < 50; ++b) {
      for (std::size_t p = 1; p < h.num_phases(); ++p) {
        if (h.same_phase_group(MemberId{a}, MemberId{b}, p)) {
          EXPECT_TRUE(h.same_phase_group(MemberId{a}, MemberId{b}, p + 1));
        }
      }
    }
  }
}

TEST(GridBoxHierarchy, ChildSlotIdentifiesSubgroupWithinParent) {
  hashing::FairHash hash(6);
  GridBoxHierarchy h(256, 4, hash);
  for (std::uint32_t i = 0; i < 256; ++i) {
    const MemberId m{i};
    for (std::size_t p = 2; p <= h.num_phases(); ++p) {
      const std::uint32_t slot = h.child_slot(m, p);
      EXPECT_LT(slot, 4u);
      // The child slot is the digit that refines the parent prefix:
      // parent_prefix * K + slot == child (phase p-1) prefix.
      EXPECT_EQ(h.phase_group(m, p) * 4 + slot, h.phase_group(m, p - 1));
    }
  }
}

TEST(GridBoxHierarchy, ChildSlotRejectsPhaseOne) {
  hashing::FairHash hash(7);
  GridBoxHierarchy h(64, 4, hash);
  EXPECT_THROW((void)h.child_slot(MemberId{0}, 1), PreconditionError);
  EXPECT_THROW((void)h.child_slot(MemberId{0}, h.num_phases() + 1),
               PreconditionError);
}

TEST(GridBoxHierarchy, PhasePeersAreExactlyTheSameGroupMinusSelf) {
  hashing::FairHash hash(8);
  GridBoxHierarchy h(128, 4, hash);
  const auto members = member_range(128);
  const MemberId self{42};
  for (std::size_t p = 1; p <= h.num_phases(); ++p) {
    const auto peers = h.phase_peers(members, self, p);
    std::set<MemberId> peer_set(peers.begin(), peers.end());
    EXPECT_FALSE(peer_set.contains(self));
    for (const MemberId m : members) {
      if (m == self) continue;
      EXPECT_EQ(peer_set.contains(m), h.same_phase_group(self, m, p));
    }
  }
  // Peer sets grow (weakly) with the phase and end with everyone.
  EXPECT_EQ(h.phase_peers(members, self, h.num_phases()).size(), 127u);
}

TEST(GridBoxHierarchy, BoxPopulationAveragesK) {
  hashing::FairHash hash(9);
  GridBoxHierarchy h(4096, 4, hash);  // 1024 boxes
  std::map<GridBoxId, std::size_t> occupancy;
  for (std::uint32_t i = 0; i < 4096; ++i) ++occupancy[h.box_of(MemberId{i})];
  std::size_t total = 0;
  for (const auto& [box, count] : occupancy) total += count;
  EXPECT_EQ(total, 4096u);
  // Average K with Poisson spread; no box should be grossly overloaded.
  for (const auto& [box, count] : occupancy) EXPECT_LE(count, 20u);
}

TEST(GridBoxHierarchy, AddressRoundTripsThroughBoxId) {
  hashing::FairHash hash(10);
  GridBoxHierarchy h(256, 4, hash);
  for (std::uint64_t b = 0; b < h.num_boxes(); ++b) {
    const auto addr = h.address_of(GridBoxId{static_cast<std::uint32_t>(b)});
    EXPECT_EQ(addr.box().value(), b);
    EXPECT_EQ(addr.digit_count(), h.digit_count());
    EXPECT_EQ(addr.radix(), 4u);
  }
}

TEST(GridBoxHierarchy, HashValueMatchesUnderlyingHash) {
  hashing::FairHash hash(11);
  GridBoxHierarchy h(100, 4, hash);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(h.hash_value(MemberId{i}), hash.unit_value(MemberId{i}));
  }
}

TEST(GridBoxHierarchy, EstimateToleranceWithinFactorK) {
  // The hierarchy shape only changes when the estimate crosses a power of K
  // (the paper's "approximate estimate of N usually suffices").
  hashing::FairHash hash(12);
  const GridBoxHierarchy h_low(65, 4, hash);
  const GridBoxHierarchy h_high(256, 4, hash);
  EXPECT_EQ(h_low.num_phases(), h_high.num_phases());
  EXPECT_EQ(h_low.num_boxes(), h_high.num_boxes());
  for (std::uint32_t i = 0; i < 65; ++i) {
    EXPECT_EQ(h_low.box_of(MemberId{i}), h_high.box_of(MemberId{i}));
  }
}

}  // namespace
}  // namespace gridbox::hierarchy
