// Deeper unit coverage of the committee/leader baseline's internals: the
// deterministic election rule, role assignment, and partial correctness at
// each level.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/protocols/baseline/committee.h"
#include "src/protocols/baseline/leader_election.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::baseline {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

// The smallest-(hash, id) member of a phase group, computed independently of
// the implementation.
MemberId expected_leader(const World& world, std::size_t phase,
                         std::uint64_t prefix) {
  const auto& hier = world.hierarchy();
  MemberId best = MemberId::invalid();
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(world.votes().size()); ++i) {
    const MemberId m{i};
    if (hier.phase_group(m, phase) != prefix) continue;
    if (!best.is_valid() || hier.hash_value(m) < hier.hash_value(best) ||
        (hier.hash_value(m) == hier.hash_value(best) && m < best)) {
      best = m;
    }
  }
  return best;
}

TEST(CommitteeInternals, ExactlyOneBoxLeaderPerOccupiedBox) {
  WorldOptions options;
  options.group_size = 96;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});
  world.start_all(nodes);
  world.simulator().run_until(SimTime::millis(1));  // roles fixed at start

  std::map<std::uint64_t, std::size_t> leaders_per_box;
  for (const auto& node : nodes) {
    if (node->on_committee(1)) {
      ++leaders_per_box[world.hierarchy().phase_group(node->self(), 1)];
    }
  }
  std::set<std::uint64_t> occupied;
  for (const auto& node : nodes) {
    occupied.insert(world.hierarchy().phase_group(node->self(), 1));
  }
  EXPECT_EQ(leaders_per_box.size(), occupied.size());
  for (const auto& [box, count] : leaders_per_box) EXPECT_EQ(count, 1u);
}

TEST(CommitteeInternals, LeaderMatchesIndependentElectionRule) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});
  world.start_all(nodes);
  world.simulator().run_until(SimTime::millis(1));

  const auto& hier = world.hierarchy();
  for (const auto& node : nodes) {
    for (std::size_t phase = 1; phase <= hier.num_phases(); ++phase) {
      const MemberId leader =
          expected_leader(world, phase, hier.phase_group(node->self(), phase));
      EXPECT_EQ(node->on_committee(phase), node->self() == leader)
          << to_string(node->self()) << " phase " << phase;
    }
  }
}

TEST(CommitteeInternals, CommitteeSizeIsRespected) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  CommitteeConfig config;
  config.committee_size = 3;
  auto nodes = world.make_nodes<CommitteeNode>(config);
  world.start_all(nodes);
  world.simulator().run_until(SimTime::millis(1));

  // At the root (everyone in one group), exactly min(3, N) members hold a
  // committee seat.
  std::size_t root_committee = 0;
  for (const auto& node : nodes) {
    if (node->on_committee(world.hierarchy().num_phases())) ++root_committee;
  }
  EXPECT_EQ(root_committee, 3u);
}

TEST(CommitteeInternals, RootCommitteeIsNestedInLowerCommittees) {
  // The min-hash member of the whole group is also the min-hash member of
  // its own box: a root committee member of K'=1 sits on every committee of
  // its own chain.
  WorldOptions options;
  options.group_size = 80;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});
  world.start_all(nodes);
  world.simulator().run_until(SimTime::millis(1));

  for (const auto& node : nodes) {
    if (!node->on_committee(world.hierarchy().num_phases())) continue;
    for (std::size_t phase = 1; phase <= world.hierarchy().num_phases();
         ++phase) {
      EXPECT_TRUE(node->on_committee(phase)) << phase;
    }
  }
}

TEST(CommitteeInternals, PhaseRoundsOneStillCompletesLossless) {
  // No retransmission at all (phase_rounds = 1): in a lossless network the
  // tree exchange still completes exactly.
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  CommitteeConfig config;
  config.phase_rounds = 1;
  auto nodes = world.make_nodes<LeaderElectionNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_EQ(node->outcome().estimate.count(), 64u);
  }
}

TEST(CommitteeInternals, LossyNetworkHurtsNoRetransmissionMore) {
  const auto mean_completeness = [](std::uint32_t phase_rounds) {
    double total = 0.0;
    constexpr int kRuns = 8;
    for (int run = 0; run < kRuns; ++run) {
      WorldOptions options;
      options.group_size = 64;
      options.k = 4;
      options.loss = 0.3;
      options.seed = 50 + static_cast<std::uint64_t>(run);
      World world(options);
      CommitteeConfig config;
      config.phase_rounds = phase_rounds;
      auto nodes = world.make_nodes<LeaderElectionNode>(config);
      world.start_all(nodes);
      world.simulator().run();
      for (const auto& node : nodes) {
        total += node->finished()
                     ? static_cast<double>(node->outcome().estimate.count()) /
                           64.0
                     : 0.0;
      }
    }
    return total / (kRuns * 64.0);
  };
  EXPECT_LT(mean_completeness(1), mean_completeness(3));
}

}  // namespace
}  // namespace gridbox::protocols::baseline
