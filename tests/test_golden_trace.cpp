// Golden-trace regression: the complete GossipTrace event stream of two
// canonical worlds is a checked-in fixture, asserted byte-identical on
// replay. Any change to protocol scheduling — round timing, RNG draw order,
// message handling — shows up as a visible fixture diff instead of silent
// drift. Regenerate deliberately with GRIDBOX_REGEN_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/protocols/gossip/hier_gossip.h"
#include "src/protocols/gossip/trace.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using protocols::gossip::GossipConfig;
using protocols::gossip::GossipTrace;
using protocols::gossip::HierGossipNode;
using protocols::gossip::PhaseEnd;
using testing::World;
using testing::WorldOptions;

const char* how_name(PhaseEnd how) {
  switch (how) {
    case PhaseEnd::kTimeout:
      return "timeout";
    case PhaseEnd::kSaturated:
      return "saturated";
    case PhaseEnd::kAdopted:
      return "adopted";
  }
  return "?";
}

/// Serializes every trace event as one line, timestamped from the simulator
/// clock. The format is append-only: the exact event order IS the artifact.
struct SerializingTrace final : GossipTrace {
  explicit SerializingTrace(sim::Simulator& simulator)
      : simulator(simulator) {}

  void on_phase_entered(MemberId member, std::size_t phase) override {
    out << "enter M" << member.value() << " phase=" << phase << " t="
        << simulator.now().ticks() << "\n";
  }
  void on_value_learned(MemberId member, std::size_t phase,
                        std::uint32_t index) override {
    out << "learn M" << member.value() << " phase=" << phase
        << " index=" << index << " t=" << simulator.now().ticks() << "\n";
  }
  void on_phase_concluded(MemberId member, std::size_t phase, PhaseEnd how,
                          std::uint32_t votes) override {
    out << "conclude M" << member.value() << " phase=" << phase
        << " how=" << how_name(how) << " votes=" << votes << " t="
        << simulator.now().ticks() << "\n";
  }
  void on_finished(MemberId member, std::uint32_t votes) override {
    out << "finish M" << member.value() << " votes=" << votes << " t="
        << simulator.now().ticks() << "\n";
  }

  sim::Simulator& simulator;
  std::ostringstream out;
};

std::string record_world(double loss) {
  WorldOptions options;
  options.group_size = 32;
  options.k = 4;
  options.seed = 7;
  options.loss = loss;
  World world(options);
  SerializingTrace trace(world.simulator());
  GossipConfig config;
  config.trace = &trace;  // the invariant checker chains in front
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  return trace.out.str();
}

void check_against_golden(const std::string& name, const std::string& got) {
  const std::string path =
      std::string(GRIDBOX_TEST_DATA_DIR) + "/golden/" + name;
  if (std::getenv("GRIDBOX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (regenerate with GRIDBOX_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  // Byte-identical, and loud about where the drift starts.
  if (got != want.str()) {
    const std::string& w = want.str();
    std::size_t i = 0;
    while (i < got.size() && i < w.size() && got[i] == w[i]) ++i;
    std::size_t line = 1;
    for (std::size_t j = 0; j < i; ++j) {
      if (w[j] == '\n') ++line;
    }
    FAIL() << name << ": trace drifted from golden fixture at line " << line
           << " (byte " << i << " of " << w.size()
           << "). If the change is intentional, regenerate with "
              "GRIDBOX_REGEN_GOLDEN=1.";
  }
}

TEST(GoldenTrace, LosslessWorldReplaysByteIdentical) {
  const std::string got = record_world(0.0);
  ASSERT_FALSE(got.empty());
  check_against_golden("trace_lossless_n32_k4_seed7.txt", got);
}

TEST(GoldenTrace, TwentyPercentLossWorldReplaysByteIdentical) {
  const std::string got = record_world(0.2);
  ASSERT_FALSE(got.empty());
  check_against_golden("trace_loss20_n32_k4_seed7.txt", got);
}

// The recording itself must be deterministic: two in-process replays of the
// same world produce the same bytes (guards against map-iteration or
// address-dependent ordering sneaking into the trace path).
TEST(GoldenTrace, InProcessReplayIsDeterministic) {
  EXPECT_EQ(record_world(0.2), record_world(0.2));
}

}  // namespace
}  // namespace gridbox
