#include "src/protocols/gossip/hier_gossip.h"

#include <gtest/gtest.h>

#include "src/protocols/protocol_stats.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::gossip {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

// Generous round budget: at C = 3 a lossless run reaches exact completeness
// at every member with overwhelming probability (the assertions below run on
// fixed seeds, so "overwhelming" is de facto deterministic).
GossipConfig config_for(std::uint32_t k, double c = 3.0) {
  GossipConfig config;
  config.k = k;
  config.fanout_m = 2;
  config.round_multiplier_c = c;
  return config;
}

TEST(GossipConfig, RoundsPerPhaseIsCeilCLogMN) {
  GossipConfig c;
  c.fanout_m = 2;
  c.round_multiplier_c = 1.0;
  EXPECT_EQ(c.rounds_per_phase(200), 8u);  // ceil(log2 200) = 8
  EXPECT_EQ(c.rounds_per_phase(256), 8u);
  EXPECT_EQ(c.rounds_per_phase(257), 9u);
  c.round_multiplier_c = 2.0;
  EXPECT_EQ(c.rounds_per_phase(200), 16u);
  c.round_multiplier_c = 1.0;
  c.fanout_m = 4;
  EXPECT_EQ(c.rounds_per_phase(200), 4u);  // ceil(log4 200) = 4
}

TEST(GossipConfig, FanoutOneFallsBackToBaseTwo) {
  GossipConfig c;
  c.fanout_m = 1;
  c.round_multiplier_c = 1.0;
  EXPECT_EQ(c.rounds_per_phase(200), 8u);
}

TEST(GossipConfig, RejectsDegenerateParameters) {
  GossipConfig c;
  c.fanout_m = 0;
  EXPECT_THROW((void)c.rounds_per_phase(100), PreconditionError);
  c.fanout_m = 2;
  c.round_multiplier_c = 0.0;
  EXPECT_THROW((void)c.rounds_per_phase(100), PreconditionError);
}

TEST(HierGossip, RejectsMismatchedK) {
  World world(WorldOptions{.group_size = 16, .k = 4});
  GossipConfig config = config_for(2);  // hierarchy K is 4
  EXPECT_THROW((HierGossipNode{MemberId{0}, 0.0, world.group().full_view(),
                               world.env(), Rng{1}, config}),
               PreconditionError);
}

TEST(HierGossip, LosslessRunReachesFullCompletenessEverywhere) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();

  const agg::Partial truth = world.votes().exact_partial_all();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished()) << to_string(node->self());
    EXPECT_EQ(node->outcome().estimate.count(), 64u);
    EXPECT_DOUBLE_EQ(
        node->outcome().estimate.value(agg::AggregateKind::kAverage),
        truth.value(agg::AggregateKind::kAverage));
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(HierGossip, NoDoubleCountingUnderHeavyLoss) {
  WorldOptions options;
  options.group_size = 80;
  options.k = 4;
  options.loss = 0.5;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_EQ(world.audit()->violation_count(), 0u);
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Count must equal the audited provenance set size (no duplicates).
    EXPECT_EQ(world.audit()->votes_behind(node->outcome().audit_token),
              node->outcome().estimate.count());
    EXPECT_LE(node->outcome().estimate.count(), 80u);
    EXPECT_GE(node->outcome().estimate.count(), 1u);  // at least its own vote
  }
}

TEST(HierGossip, SingleBoxGroupConcludesInOnePhase) {
  WorldOptions options;
  options.group_size = 4;  // N <= K: one box, one phase
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_EQ(node->phase_completion_times().size(), 1u);
    EXPECT_EQ(node->outcome().estimate.count(), 4u);
  }
}

TEST(HierGossip, PhaseCompletionTimesAreMonotone) {
  WorldOptions options;
  options.group_size = 100;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    const auto& times = node->phase_completion_times();
    ASSERT_EQ(times.size(), world.hierarchy().num_phases());
    for (std::size_t i = 1; i < times.size(); ++i) {
      EXPECT_GE(times[i], times[i - 1]);
    }
    EXPECT_EQ(node->outcome().finish_time, times.back());
  }
}

TEST(HierGossip, EarlyBumpFinishesNoLaterThanFullTimeout) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;

  const auto last_finish = [&options](bool early_bump) {
    World world(options);
    GossipConfig config = config_for(4);
    config.early_bump = early_bump;
    auto nodes = world.make_nodes<HierGossipNode>(config);
    world.start_all(nodes);
    world.simulator().run();
    SimTime last = SimTime::zero();
    for (const auto& node : nodes) {
      EXPECT_TRUE(node->finished());
      last = std::max(last, node->outcome().finish_time);
    }
    return last;
  };

  EXPECT_LE(last_finish(true), last_finish(false));
}

TEST(HierGossip, SynchronousModeRunsFullRoundBudgetEveryPhase) {
  WorldOptions options;
  options.group_size = 32;
  options.k = 4;
  World world(options);
  GossipConfig config = config_for(4);
  config.early_bump = false;
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();

  const std::uint64_t per_phase = config.rounds_per_phase(32);
  const std::uint64_t expected =
      per_phase * world.hierarchy().num_phases();
  for (const auto& node : nodes) {
    EXPECT_EQ(node->rounds_executed(), expected);
  }
}

TEST(HierGossip, LingerKeepsRoundCountButFeedsStragglers) {
  // With linger on (default), every node gossips for the full grid even when
  // saturated, so round counts equal the synchronous budget; the payoff is
  // the higher completeness measured under loss (see bench/abl_sync_vs_async).
  WorldOptions options;
  options.group_size = 32;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();
  const std::uint64_t expected =
      config_for(4).rounds_per_phase(32) * world.hierarchy().num_phases();
  for (const auto& node : nodes) {
    EXPECT_EQ(node->rounds_executed(), expected);
  }
}

TEST(HierGossip, TerminateEarlyAblationFinishesSooner) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  const auto mean_rounds = [&options](bool linger) {
    World world(options);
    GossipConfig config = config_for(4);
    config.final_phase_linger = linger;
    auto nodes = world.make_nodes<HierGossipNode>(config);
    world.start_all(nodes);
    world.simulator().run();
    double total = 0;
    for (const auto& node : nodes) {
      total += static_cast<double>(node->rounds_executed());
    }
    return total / 64.0;
  };
  EXPECT_LT(mean_rounds(false), mean_rounds(true));
}

TEST(HierGossip, MessageComplexityIsRoundsTimesFanout) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  GossipConfig config = config_for(4);
  config.early_bump = false;
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();

  // Per node: at most M messages per round; exactly M when peers >= M.
  for (const auto& node : nodes) {
    EXPECT_LE(node->messages_sent(),
              node->rounds_executed() * config.fanout_m);
  }
  // Globally: O(N log^2 N) with small constant. For N=64, M=2, K=4, C=3:
  // phases=3, rounds/phase=18, so <= 64*3*18*2 = 6912.
  EXPECT_LE(world.network().stats().messages_sent, 6912u);
  EXPECT_GT(world.network().stats().messages_sent, 0u);
}

TEST(HierGossip, CrashedMemberStopsSendingButVotesMaySurvive) {
  WorldOptions options;
  options.group_size = 32;
  options.k = 4;
  // Kill member 5 shortly after phase 1 begins: by then its vote has very
  // likely been gossiped onwards, so survivors may still include it.
  options.chaos = "crash M5 at=35ms";
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(config_for(4));
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_FALSE(nodes[5]->finished());
  std::size_t with_victim = 0;
  for (const auto& node : nodes) {
    if (node->self() == MemberId{5}) continue;
    ASSERT_TRUE(node->finished());
    if (world.audit()->set_of(node->outcome().audit_token).test(5)) {
      ++with_victim;
    }
  }
  // Not asserting a specific count (timing-dependent), but the run must be
  // audit-clean and everyone else must finish.
  EXPECT_EQ(world.audit()->violation_count(), 0u);
  (void)with_victim;
}

TEST(HierGossip, StartSkewStillConverges) {
  WorldOptions options;
  options.group_size = 48;
  options.k = 4;
  World world(options);
  GossipConfig config = config_for(4);
  config.start_skew_max = SimTime::millis(30);  // three rounds of skew
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Lossless network: skew alone may cost a few votes at unlucky nodes but
    // most of the group must still be covered.
    EXPECT_GE(node->outcome().estimate.count(), 40u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(HierGossip, ValuePoliciesAllReachFullCompletenessLossless) {
  for (const ValuePolicy policy :
       {ValuePolicy::kRandomSingle, ValuePolicy::kRarestFirst,
        ValuePolicy::kRoundRobin}) {
    WorldOptions options;
    options.group_size = 64;
    options.k = 4;
    World world(options);
    GossipConfig config = config_for(4);
    config.value_policy = policy;
    auto nodes = world.make_nodes<HierGossipNode>(config);
    world.start_all(nodes);
    world.simulator().run();
    for (const auto& node : nodes) {
      ASSERT_TRUE(node->finished());
      EXPECT_EQ(node->outcome().estimate.count(), 64u)
          << "policy=" << static_cast<int>(policy);
    }
  }
}

TEST(HierGossip, Phase1EarlyBumpWithViewFinishesFasterLossless) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;

  const auto finish = [&options](bool view_bump) {
    World world(options);
    GossipConfig config = config_for(4);
    config.phase1_early_bump_with_view = view_bump;
    auto nodes = world.make_nodes<HierGossipNode>(config);
    world.start_all(nodes);
    world.simulator().run();
    SimTime last = SimTime::zero();
    for (const auto& node : nodes) {
      EXPECT_TRUE(node->finished());
      EXPECT_EQ(node->outcome().estimate.count(), 64u);
      last = std::max(last, node->outcome().finish_time);
    }
    return last;
  };

  EXPECT_LE(finish(true), finish(false));
}

}  // namespace
}  // namespace gridbox::protocols::gossip
