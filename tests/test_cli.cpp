#include "src/runner/cli.h"

#include <gtest/gtest.h>

namespace gridbox::runner {
namespace {

CliOptions must_parse(const std::vector<std::string>& args) {
  const CliParseResult result = parse_cli(args);
  EXPECT_TRUE(result.options.has_value()) << result.error;
  return result.options.value_or(CliOptions{});
}

std::string must_fail(const std::vector<std::string>& args) {
  const CliParseResult result = parse_cli(args);
  EXPECT_FALSE(result.options.has_value());
  return result.error;
}

TEST(Cli, EmptyArgsGiveDefaults) {
  const CliOptions o = must_parse({});
  EXPECT_EQ(o.config.group_size, 200u);
  EXPECT_EQ(o.config.protocol, ProtocolKind::kHierGossip);
  EXPECT_DOUBLE_EQ(o.config.ucast_loss, 0.25);
  EXPECT_EQ(o.runs, 1u);
  EXPECT_FALSE(o.show_help);
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(must_parse({"--help"}).show_help);
  EXPECT_TRUE(must_parse({"-h"}).show_help);
  // Even with garbage afterwards.
  EXPECT_TRUE(must_parse({"--help", "--bogus"}).show_help);
}

TEST(Cli, ParsesNumericFlags) {
  const CliOptions o = must_parse({"--n", "512", "--k", "8", "--m", "4", "--c",
                                   "2.5", "--loss", "0.4", "--pf", "0.01",
                                   "--seed", "99", "--runs", "7"});
  EXPECT_EQ(o.config.group_size, 512u);
  EXPECT_EQ(o.config.gossip.k, 8u);
  EXPECT_EQ(o.config.hierarchy_k, 8u);
  EXPECT_EQ(o.config.gossip.fanout_m, 4u);
  EXPECT_DOUBLE_EQ(o.config.gossip.round_multiplier_c, 2.5);
  EXPECT_DOUBLE_EQ(o.config.ucast_loss, 0.4);
  EXPECT_DOUBLE_EQ(o.config.crash_probability, 0.01);
  EXPECT_EQ(o.config.seed, 99u);
  EXPECT_EQ(o.runs, 7u);
}

TEST(Cli, ParsesJobs) {
  EXPECT_EQ(must_parse({}).config.jobs, 0u);  // 0 = auto
  EXPECT_EQ(must_parse({"--jobs", "4"}).config.jobs, 4u);
  EXPECT_NE(must_fail({"--jobs", "0"}).find("at least 1"), std::string::npos);
  EXPECT_NE(must_fail({"--jobs", "nope"}).find("integer"), std::string::npos);
}

TEST(Cli, ParsesEveryProtocolName) {
  EXPECT_EQ(must_parse({"--protocol", "hier-gossip"}).config.protocol,
            ProtocolKind::kHierGossip);
  EXPECT_EQ(must_parse({"--protocol", "all-to-all"}).config.protocol,
            ProtocolKind::kFullyDistributed);
  EXPECT_EQ(must_parse({"--protocol", "centralized"}).config.protocol,
            ProtocolKind::kCentralized);
  EXPECT_EQ(must_parse({"--protocol", "leader"}).config.protocol,
            ProtocolKind::kLeaderElection);
  EXPECT_EQ(must_parse({"--protocol", "committee"}).config.protocol,
            ProtocolKind::kCommittee);
}

TEST(Cli, ParsesEveryAggregateName) {
  EXPECT_EQ(must_parse({"--aggregate", "min"}).config.aggregate,
            agg::AggregateKind::kMin);
  EXPECT_EQ(must_parse({"--aggregate", "stddev"}).config.aggregate,
            agg::AggregateKind::kStdDev);
}

TEST(Cli, TopoHashImpliesPositions) {
  const CliOptions o = must_parse({"--hash", "topo"});
  EXPECT_EQ(o.config.hash, HashKind::kTopoAware);
  EXPECT_TRUE(o.config.assign_positions);
}

TEST(Cli, FieldWorkloadImpliesPositions) {
  const CliOptions o = must_parse({"--workload", "field"});
  EXPECT_EQ(o.config.workload, WorkloadKind::kField);
  EXPECT_TRUE(o.config.assign_positions);
}

TEST(Cli, BooleanFlags) {
  const CliOptions o =
      must_parse({"--audit", "--no-early-bump", "--no-linger"});
  EXPECT_TRUE(o.config.audit);
  EXPECT_FALSE(o.config.gossip.early_bump);
  EXPECT_FALSE(o.config.gossip.final_phase_linger);
}

TEST(Cli, ExchangeModes) {
  EXPECT_EQ(must_parse({"--exchange", "single"}).config.gossip.exchange_mode,
            protocols::gossip::ExchangeMode::kSingleValue);
  EXPECT_EQ(must_parse({"--exchange", "full"}).config.gossip.exchange_mode,
            protocols::gossip::ExchangeMode::kFullState);
}

TEST(Cli, RejectsUnknownFlag) {
  EXPECT_NE(must_fail({"--frobnicate"}).find("unknown flag"),
            std::string::npos);
}

TEST(Cli, RejectsMissingValue) {
  EXPECT_NE(must_fail({"--n"}).find("missing value"), std::string::npos);
}

TEST(Cli, RejectsNonNumericValues) {
  EXPECT_NE(must_fail({"--n", "many"}).find("integer"), std::string::npos);
  EXPECT_NE(must_fail({"--loss", "lots"}).find("number"), std::string::npos);
  EXPECT_NE(must_fail({"--n", "12x"}).find("integer"), std::string::npos);
}

TEST(Cli, RejectsNegativeAndZeroWhereInvalid) {
  EXPECT_FALSE(parse_cli({"--runs", "0"}).options.has_value());
  EXPECT_FALSE(parse_cli({"--n", "-5"}).options.has_value());
}

TEST(Cli, RejectsUnknownEnumValues) {
  EXPECT_NE(must_fail({"--protocol", "paxos"}).find("unknown"),
            std::string::npos);
  EXPECT_NE(must_fail({"--aggregate", "median"}).find("unknown"),
            std::string::npos);
  EXPECT_NE(must_fail({"--hash", "sha256"}).find("unknown"),
            std::string::npos);
  EXPECT_NE(must_fail({"--workload", "spiky"}).find("unknown"),
            std::string::npos);
  EXPECT_NE(must_fail({"--exchange", "half"}).find("unknown"),
            std::string::npos);
}

TEST(Cli, CsvPathIsCaptured) {
  EXPECT_EQ(must_parse({"--csv", "/tmp/out.csv"}).csv_path, "/tmp/out.csv");
}

TEST(Cli, UsageMentionsEveryFlag) {
  const std::string usage = usage_text();
  for (const char* flag :
       {"--protocol", "--n", "--k", "--m", "--c", "--rounds-per-phase",
        "--exchange", "--no-early-bump", "--no-linger", "--committee-size",
        "--view-coverage", "--hash", "--loss", "--partition-loss", "--pf",
        "--workload", "--aggregate", "--audit", "--seed", "--runs", "--jobs",
        "--csv", "--metrics", "--profile", "--trace-out", "--run-manifest",
        "--lineage", "--curves-out", "--flight-recorder", "--help"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace gridbox::runner
