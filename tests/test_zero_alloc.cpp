// Allocation-count proof for the zero-allocation message path.
//
// This binary replaces the global operator new with a counting shim and
// asserts that the steady-state transport path — send -> event queue ->
// deliver_frame -> on_message — and the typed periodic-timer re-arm path
// execute without touching the heap once warmed up. Warm-up is allowed to
// allocate: the event-queue slab, the key heap, and the endpoint map all
// grow to their high-water mark there. After that, every per-message and
// per-tick structure is either inline (net::Frame, sim::Event) or reused.
//
// Kept as a separate test executable so the operator-new override cannot
// perturb the main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/agg/codec.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/fault_model.h"
#include "src/net/latency_model.h"
#include "src/net/message.h"
#include "src/net/network.h"
#include "src/obs/telemetry.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace

// Counting shims. Only the unaligned forms are replaced: the containers on
// the suspect list (std::vector, std::unordered_map, std::function) all
// allocate through plain operator new. (The telemetry tests below keep
// their over-aligned TelemetryLane on the stack, so the aligned forms
// never enter the measured window.)
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gridbox {
namespace {

/// Receiver that decodes like a real protocol node (header reads) but keeps
/// no per-message state, so any allocation observed is the transport's.
class DecodingSink final : public net::Endpoint {
 public:
  void on_message(const net::Message& message) override {
    agg::ByteReader r(message.frame);
    checksum_ += r.u8();
    checksum_ += r.u64();
    ++received_;
  }

  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
  std::uint64_t checksum_ = 0;
};

TEST(ZeroAlloc, SteadyStateSendDeliverPathDoesNotTouchTheHeap) {
  sim::Simulator sim;
  net::SimNetwork network(sim, std::make_unique<net::NoLoss>(),
                          std::make_unique<net::ConstantLatency>(SimTime{5}),
                          Rng{42});
  DecodingSink left;
  DecodingSink right;
  network.attach(MemberId{1}, left);
  network.attach(MemberId{2}, right);

  agg::ByteWriter w;
  w.u8(7);
  w.u64(0xfeedfaceULL);
  w.f64(3.5);
  const net::Frame frame = w.take();

  const auto burst = [&](int messages) {
    for (int i = 0; i < messages; ++i) {
      network.send(net::Message{MemberId{1}, MemberId{2}, frame});
      network.send(net::Message{MemberId{2}, MemberId{1}, frame});
    }
    sim.run();
  };

  // Warm-up: grows the event-queue slab/key heap past anything the steady
  // window will need (128 pending events vs 64 below).
  burst(64);

  const std::uint64_t before = heap_allocs();
  for (int round = 0; round < 100; ++round) burst(32);
  const std::uint64_t after = heap_allocs();

  EXPECT_EQ(after - before, 0u)
      << "steady-state send/deliver allocated " << (after - before)
      << " time(s) over 6400 messages";
  EXPECT_EQ(left.received() + right.received(), 2u * (64 + 100 * 32));
}

/// Re-arming timer target; stops itself after a fixed number of ticks.
class TickUntil final : public sim::TimerTarget {
 public:
  explicit TickUntil(std::uint64_t limit) : limit_(limit) {}

  bool on_timer(std::uint32_t) override { return ++ticks_ < limit_; }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  std::uint64_t limit_;
  std::uint64_t ticks_ = 0;
};

TEST(ZeroAlloc, TypedPeriodicTimerReArmsWithoutAllocating) {
  sim::Simulator sim;
  TickUntil timer(5000);
  sim.schedule_periodic(SimTime{0}, SimTime{10}, timer);

  // One step warms the queue slab; every later re-arm reuses the freed slot.
  ASSERT_TRUE(sim.step());

  const std::uint64_t before = heap_allocs();
  sim.run();
  const std::uint64_t after = heap_allocs();

  EXPECT_EQ(after - before, 0u)
      << "periodic re-arm allocated " << (after - before)
      << " time(s) over 4999 ticks";
  EXPECT_EQ(timer.ticks(), 5000u);
}

TEST(ZeroAlloc, TransportVirtualDispatchAddsNoAllocations) {
  // The sim path dispatches through the net::Transport interface since the
  // UDP runtime landed. Virtual dispatch must not reintroduce allocations:
  // the same steady-state proof as above, but every send goes through a
  // Transport& base reference, exactly as protocol nodes issue it.
  sim::Simulator sim;
  net::SimNetwork network(sim, std::make_unique<net::NoLoss>(),
                          std::make_unique<net::ConstantLatency>(SimTime{5}),
                          Rng{42});
  net::Transport& transport = network;
  DecodingSink left;
  DecodingSink right;
  transport.attach(MemberId{1}, left);
  transport.attach(MemberId{2}, right);

  agg::ByteWriter w;
  w.u8(7);
  w.u64(0xfeedfaceULL);
  const net::Frame frame = w.take();

  const auto burst = [&](int messages) {
    for (int i = 0; i < messages; ++i) {
      transport.send(net::Message{MemberId{1}, MemberId{2}, frame});
      transport.send(net::Message{MemberId{2}, MemberId{1}, frame});
    }
    sim.run();
  };

  burst(64);  // warm-up (see SteadyStateSendDeliverPathDoesNotTouchTheHeap)

  const std::uint64_t before = heap_allocs();
  for (int round = 0; round < 100; ++round) burst(32);
  const std::uint64_t after = heap_allocs();

  EXPECT_EQ(after - before, 0u)
      << "Transport-dispatched send/deliver allocated " << (after - before)
      << " time(s) over 6400 messages";
  EXPECT_EQ(left.received() + right.received(), 2u * (64 + 100 * 32));
}

TEST(ZeroAlloc, TelemetryRecordPathDoesNotTouchTheHeap) {
  // The live-telemetry claim (src/obs/telemetry.h): when a lane is armed,
  // the steady-state record path is relaxed atomics into preallocated
  // fixed arrays. Same send/deliver harness as above plus a re-arming
  // timer, with every hook firing — counters, lateness and drain
  // histograms, queue-depth high-water — and still zero allocations.
  sim::Simulator sim;
  obs::TelemetryLane lane;
  sim.set_telemetry(&lane);
  net::SimNetwork network(sim, std::make_unique<net::NoLoss>(),
                          std::make_unique<net::ConstantLatency>(SimTime{5}),
                          Rng{42});
  DecodingSink left;
  DecodingSink right;
  network.attach(MemberId{1}, left);
  network.attach(MemberId{2}, right);
  // A periodic timer that outlives the test keeps the timer-fire hook hot
  // in every burst; run_until slices advance time without draining it.
  TickUntil timer(1u << 20);
  sim.schedule_periodic(SimTime{0}, SimTime{10}, timer);

  agg::ByteWriter w;
  w.u8(7);
  w.u64(0xfeedfaceULL);
  const net::Frame frame = w.take();

  const auto burst = [&](int messages) {
    for (int i = 0; i < messages; ++i) {
      network.send(net::Message{MemberId{1}, MemberId{2}, frame});
      network.send(net::Message{MemberId{2}, MemberId{1}, frame});
    }
    (void)sim.run_until(sim.now() + SimTime{1000});
  };

  burst(64);  // warm-up (see SteadyStateSendDeliverPathDoesNotTouchTheHeap)

  const std::uint64_t before = heap_allocs();
  for (int round = 0; round < 100; ++round) burst(32);
  const std::uint64_t after = heap_allocs();

  EXPECT_EQ(after - before, 0u)
      << "telemetry-armed steady state allocated " << (after - before)
      << " time(s) over 6400 messages";
  // Every hook actually fired: the proof is not vacuous.
  EXPECT_GT(lane.frames_delivered.load(std::memory_order_relaxed), 6400u);
  EXPECT_GT(lane.timers_fired.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(lane.timer_lateness_us.total(), 0u);
  EXPECT_GT(lane.queue_depth_hw.load(std::memory_order_relaxed), 0u);
}

TEST(ZeroAlloc, CountingShimIsLive) {
  // Sanity: the override is actually installed in this binary — otherwise
  // the two proofs above would pass vacuously.
  const std::uint64_t before = heap_allocs();
  auto* p = new int(7);
  const std::uint64_t after = heap_allocs();
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace gridbox
