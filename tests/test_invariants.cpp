// The run invariant checker: unit-level violations and the live mutation
// test (a deliberately broken merge must be caught DURING the run by the
// checker, not at end-of-run measurement).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/agg/audit.h"
#include "src/common/ensure.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/protocols/invariant_checker.h"
#include "src/runner/experiment.h"
#include "tests/testing_world.h"

namespace gridbox {
namespace {

using protocols::InvariantChecker;
using protocols::gossip::PhaseEnd;

InvariantChecker::Config lax_config(std::size_t group_size = 8,
                                    std::size_t fanout = 4,
                                    std::size_t num_phases = 3) {
  InvariantChecker::Config config;
  config.group_size = group_size;
  config.fanout = fanout;
  config.num_phases = num_phases;
  config.fail_fast = false;  // unit tests inspect violations() directly
  return config;
}

TEST(InvariantChecker, CleanRunHasNoViolations) {
  InvariantChecker checker(lax_config());
  const MemberId m{2};
  checker.on_phase_entered(m, 1);
  checker.on_value_learned(m, 1, 2);
  checker.on_value_learned(m, 1, 7);
  checker.on_phase_concluded(m, 1, PhaseEnd::kTimeout, 2);
  checker.on_phase_entered(m, 2);
  checker.on_value_learned(m, 2, 3);
  checker.on_phase_concluded(m, 2, PhaseEnd::kSaturated, 5);
  checker.on_phase_entered(m, 3);
  checker.on_phase_concluded(m, 3, PhaseEnd::kAdopted, 8);
  checker.on_finished(m, 8);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_EQ(checker.finished_count(), 1u);
}

TEST(InvariantChecker, PhaseRegressionIsAViolation) {
  InvariantChecker checker(lax_config());
  checker.on_phase_entered(MemberId{0}, 2);
  checker.on_phase_entered(MemberId{0}, 1);  // regression
  checker.on_phase_entered(MemberId{0}, 1);  // re-entry is also a violation
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].member, MemberId{0});
  EXPECT_EQ(checker.violations()[0].phase, 1u);
}

TEST(InvariantChecker, VoteCountMayNeverDecrease) {
  InvariantChecker checker(lax_config());
  checker.on_phase_concluded(MemberId{1}, 1, PhaseEnd::kTimeout, 5);
  checker.on_phase_concluded(MemberId{1}, 2, PhaseEnd::kTimeout, 3);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_NE(checker.violations()[0].what.find("decreased"),
            std::string::npos);
}

TEST(InvariantChecker, VoteCountBoundedByGroupSize) {
  InvariantChecker checker(lax_config(8));
  checker.on_phase_concluded(MemberId{1}, 1, PhaseEnd::kTimeout, 9);
  ASSERT_EQ(checker.violations().size(), 1u);
}

TEST(InvariantChecker, OutOfRangeSlotAndOriginAreViolations) {
  InvariantChecker checker(lax_config(8, 4));
  checker.on_value_learned(MemberId{0}, 1, 8);  // origin >= group size
  checker.on_value_learned(MemberId{0}, 2, 4);  // slot >= fanout
  checker.on_value_learned(MemberId{0}, 2, 3);  // fine
  EXPECT_EQ(checker.violations().size(), 2u);
}

TEST(InvariantChecker, TerminationMismatchesAreViolations) {
  InvariantChecker checker(lax_config());
  checker.on_phase_concluded(MemberId{4}, 3, PhaseEnd::kTimeout, 6);
  checker.on_finished(MemberId{4}, 5);  // differs from last conclusion
  checker.on_finished(MemberId{4}, 6);  // terminated twice
  EXPECT_EQ(checker.violations().size(), 2u);
  checker.on_phase_entered(MemberId{4}, 3);  // activity after termination
  EXPECT_EQ(checker.violations().size(), 3u);
}

TEST(InvariantChecker, FailFastThrowsInvariantError) {
  InvariantChecker::Config config = lax_config();
  config.fail_fast = true;
  InvariantChecker checker(config);
  checker.on_phase_entered(MemberId{3}, 2);
  EXPECT_THROW(checker.on_phase_entered(MemberId{3}, 1), InvariantError);
  // The violation is recorded before the throw, with context.
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].member, MemberId{3});
}

TEST(InvariantChecker, DeadlineViolationCarriesTime) {
  sim::Simulator simulator;
  InvariantChecker::Config config = lax_config();
  config.scheduler = &simulator;
  config.deadline = SimTime::millis(10);
  InvariantChecker checker(config);
  simulator.schedule_at(SimTime::millis(5), [&checker] {
    checker.on_phase_entered(MemberId{0}, 1);  // in time
  });
  simulator.schedule_at(SimTime::millis(11), [&checker] {
    checker.on_phase_entered(MemberId{0}, 2);  // past the deadline
  });
  simulator.run();
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].at, SimTime::millis(11));
  EXPECT_NE(checker.violations()[0].what.find("deadline"),
            std::string::npos);
}

TEST(InvariantChecker, ExpectAllFinishedFlagsStragglers) {
  InvariantChecker checker(lax_config(4));
  checker.on_finished(MemberId{0}, 0);
  checker.on_finished(MemberId{2}, 0);
  checker.expect_all_finished(
      {MemberId{0}, MemberId{1}, MemberId{2}, MemberId{3}});
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].member, MemberId{1});
  EXPECT_EQ(checker.violations()[1].member, MemberId{3});
}

TEST(InvariantChecker, EventsForwardToChainedTrace) {
  struct Counting final : protocols::gossip::GossipTrace {
    int events = 0;
    void on_phase_entered(MemberId, std::size_t) override { ++events; }
    void on_phase_concluded(MemberId, std::size_t, PhaseEnd,
                            std::uint32_t) override {
      ++events;
    }
  };
  Counting downstream;
  InvariantChecker::Config config = lax_config();
  config.next = &downstream;
  InvariantChecker checker(config);
  checker.on_phase_entered(MemberId{0}, 1);
  checker.on_phase_concluded(MemberId{0}, 1, PhaseEnd::kTimeout, 1);
  EXPECT_EQ(downstream.events, 2);
}

// ---- the mutation test -----------------------------------------------------
//
// Acceptance criterion: a deliberately broken merge is caught by the checker
// DURING the run. We corrupt the audit registry mid-run (simulating a
// protocol bug that merges overlapping vote sets); the next phase conclusion
// observes the registry's violation delta and throws InvariantError out of
// simulator.run() — long before end-of-run measurement would notice.
TEST(InvariantChecker, BrokenMergeIsCaughtMidRunNotAtMeasurement) {
  using protocols::gossip::GossipConfig;
  using protocols::gossip::HierGossipNode;
  testing::WorldOptions options;
  options.group_size = 32;
  testing::World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(GossipConfig{});
  world.start_all(nodes);

  // 1ms in: register a merge of two overlapping singleton sets — exactly
  // what a double-counting protocol bug would do.
  world.simulator().schedule_at(SimTime::millis(1), [&world] {
    agg::AuditRegistry* audit = world.audit();
    const std::uint64_t a = audit->register_vote(MemberId{0});
    const std::uint64_t b = audit->register_vote(MemberId{0});
    (void)audit->register_merge({a, b});
  });

  try {
    world.simulator().run();
    FAIL() << "broken merge survived the whole run undetected";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("double counting"),
              std::string::npos);
  }
  // The run was aborted at the first phase conclusion after the corruption
  // (N=32: phase 1 times out at 50ms; the full protocol runs ~3x longer) —
  // and the violation carries context.
  ASSERT_EQ(world.checker()->violations().size(), 1u);
  EXPECT_LE(world.checker()->violations()[0].at, SimTime::millis(50));
}

// With invariants off, the same corruption silently reaches end-of-run
// measurement — the before/after contrast that motivates the checker.
TEST(InvariantChecker, WithoutCheckerCorruptionOnlySurfacesAtMeasurement) {
  using protocols::gossip::GossipConfig;
  using protocols::gossip::HierGossipNode;
  testing::WorldOptions options;
  options.group_size = 32;
  options.invariants = false;
  testing::World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(GossipConfig{});
  world.start_all(nodes);
  world.simulator().schedule_at(SimTime::millis(1), [&world] {
    agg::AuditRegistry* audit = world.audit();
    const std::uint64_t a = audit->register_vote(MemberId{0});
    const std::uint64_t b = audit->register_vote(MemberId{0});
    (void)audit->register_merge({a, b});
  });
  world.simulator().run();  // completes without any mid-run detection
  EXPECT_EQ(world.audit()->violation_count(), 1u);
}

// Experiment-level: run_experiment installs the checker by default and a
// clean run stays clean (also exercised implicitly by every other test).
TEST(InvariantChecker, ExperimentRunsCleanUnderChaosByDefault) {
  runner::ExperimentConfig config;
  config.group_size = 48;
  config.audit = true;
  config.crash_probability = 0.0;
  config.chaos_spec =
      "loss 0.15\n"
      "jitter p=0.3 0us..1ms\n"
      "dup p=0.3 extra=1 spread=300us\n"
      "crash M7 at=25ms\n";
  const runner::RunResult result = runner::run_experiment(config);
  EXPECT_EQ(result.measurement.audit_violations, 0u);
  EXPECT_EQ(result.measurement.reconstruction_failures, 0u);
  EXPECT_GT(result.measurement.mean_completeness, 0.5);
}

}  // namespace
}  // namespace gridbox
