// The net::Transport seam and the strict UDP datagram codec.
//
// SimNetwork and UdpTransport implement the same interface; these tests pin
// the interface-level contract on the simulated side (polymorphic use,
// dead-destination and malformed accounting through a Transport&) and the
// codec's encode/decode round-trip plus its strictness: a datagram is
// accepted only when every header field checks out AND the total size
// matches the claimed payload exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/datagram.h"
#include "src/net/fault_model.h"
#include "src/net/latency_model.h"
#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace gridbox {
namespace {

class CountingEndpoint final : public net::Endpoint {
 public:
  void on_message(const net::Message& message) override {
    ++received_;
    last_ = message;
  }
  std::uint64_t received_ = 0;
  net::Message last_;
};

TEST(Transport, SimNetworkDispatchesThroughTheInterface) {
  sim::Simulator sim;
  net::SimNetwork network(sim, std::make_unique<net::NoLoss>(),
                          std::make_unique<net::ConstantLatency>(SimTime{10}),
                          Rng{7});
  net::Transport& transport = network;

  CountingEndpoint a;
  CountingEndpoint b;
  transport.attach(MemberId{0}, a);
  transport.attach(MemberId{1}, b);

  transport.send(net::Message{MemberId{0}, MemberId{1},
                              net::Frame{0x01, 0x02, 0x03}});
  sim.run();

  EXPECT_EQ(b.received_, 1u);
  EXPECT_EQ(b.last_.source, MemberId{0});
  EXPECT_EQ(b.last_.frame.size(), 3u);
  EXPECT_EQ(transport.stats().messages_delivered, 1u);

  // Detach through the interface: the next message is dead-destination.
  transport.detach(MemberId{1});
  transport.send(net::Message{MemberId{0}, MemberId{1}, net::Frame{}});
  sim.run();
  EXPECT_EQ(b.received_, 1u);
  EXPECT_EQ(transport.stats().messages_dead_dest, 1u);
}

TEST(Datagram, EncodeDecodeRoundTripsAllSizes) {
  std::uint8_t buffer[net::kMaxDatagramBytes];
  for (std::size_t payload = 0; payload <= net::kMaxPayloadBytes;
       payload += 17) {
    std::vector<std::uint8_t> bytes(payload);
    for (std::size_t i = 0; i < payload; ++i) {
      bytes[i] = static_cast<std::uint8_t>(i * 31 + payload);
    }
    const net::Message in{MemberId{123456}, MemberId{654321},
                          net::Frame{bytes}};
    const std::size_t size = net::encode_datagram(in, buffer);
    ASSERT_EQ(size, net::kDatagramHeaderBytes + payload);

    net::Message out;
    ASSERT_EQ(net::decode_datagram(buffer, size, out), net::DecodeError::kOk);
    EXPECT_EQ(out.source, in.source);
    EXPECT_EQ(out.destination, in.destination);
    EXPECT_TRUE(out.frame == in.frame);
  }
}

TEST(Datagram, RejectsEveryTruncation) {
  std::uint8_t buffer[net::kMaxDatagramBytes];
  const net::Message in{MemberId{1}, MemberId{2},
                        net::Frame{1, 2, 3, 4, 5, 6, 7, 8}};
  const std::size_t size = net::encode_datagram(in, buffer);

  net::Message out;
  for (std::size_t cut = 0; cut < size; ++cut) {
    EXPECT_NE(net::decode_datagram(buffer, cut, out), net::DecodeError::kOk)
        << "accepted a datagram truncated to " << cut << " bytes";
  }
}

TEST(Datagram, RejectsPaddingAfterThePayload) {
  std::uint8_t buffer[net::kMaxDatagramBytes + 8] = {};
  const net::Message in{MemberId{1}, MemberId{2}, net::Frame{9, 9}};
  const std::size_t size = net::encode_datagram(in, buffer);

  net::Message out;
  EXPECT_EQ(net::decode_datagram(buffer, size + 1, out),
            net::DecodeError::kLengthMismatch);
  EXPECT_EQ(net::decode_datagram(buffer, size + 8, out),
            net::DecodeError::kLengthMismatch);
}

TEST(Datagram, RejectsHeaderFieldCorruption) {
  std::uint8_t buffer[net::kMaxDatagramBytes];
  const net::Message in{MemberId{1}, MemberId{2}, net::Frame{42}};
  const std::size_t size = net::encode_datagram(in, buffer);
  net::Message out;

  auto corrupted = [&](std::size_t offset, std::uint8_t value) {
    std::uint8_t copy[net::kMaxDatagramBytes];
    std::memcpy(copy, buffer, size);
    copy[offset] = value;
    return net::decode_datagram(copy, size, out);
  };

  EXPECT_EQ(corrupted(0, 0xFF), net::DecodeError::kBadMagic);
  EXPECT_EQ(corrupted(4, net::kDatagramVersion + 1),
            net::DecodeError::kBadVersion);
  EXPECT_EQ(corrupted(5, 1), net::DecodeError::kBadReserved);
  // Claimed length beyond the constant bound.
  EXPECT_EQ(corrupted(7, 0xFF), net::DecodeError::kOversizePayload);
  // Claimed length merely wrong for the actual size.
  EXPECT_EQ(corrupted(6, 7), net::DecodeError::kLengthMismatch);
}

TEST(Datagram, ErrorsLeaveTheOutputUntouched) {
  net::Message out{MemberId{77}, MemberId{88}, net::Frame{5}};
  const std::uint8_t junk[4] = {1, 2, 3, 4};
  ASSERT_NE(net::decode_datagram(junk, sizeof(junk), out),
            net::DecodeError::kOk);
  EXPECT_EQ(out.source, MemberId{77});
  EXPECT_EQ(out.destination, MemberId{88});
  EXPECT_EQ(out.frame.size(), 1u);
}

TEST(Datagram, ErrorNamesAreStable) {
  EXPECT_STREQ(net::to_string(net::DecodeError::kOk), "ok");
  EXPECT_STREQ(net::to_string(net::DecodeError::kTooShort), "too-short");
  EXPECT_STREQ(net::to_string(net::DecodeError::kLengthMismatch),
               "length-mismatch");
}

}  // namespace
}  // namespace gridbox
