// Gossip-style failure detector (the §6.2 substrate; paper reference [16]).
#include "src/protocols/fd/gossip_fd.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/testing_world.h"

namespace gridbox::protocols::fd {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

struct FdFleet {
  explicit FdFleet(WorldOptions options, FdConfig config = {})
      : world(options) {
    const membership::View view = world.group().full_view();
    for (const MemberId m : world.group().members()) {
      detectors.push_back(std::make_unique<GossipFailureDetector>(
          m, view, world.simulator(), world.network(),
          world.rng().derive(0xFD00 + m.value()), config));
      detectors.back()->set_liveness(
          [this](MemberId id) { return world.group().is_alive(id); });
      world.network().attach(m, *detectors.back());
    }
  }

  void start_all() {
    for (auto& d : detectors) d->start(SimTime::zero());
  }

  World world;
  std::vector<std::unique_ptr<GossipFailureDetector>> detectors;
};

TEST(FailureDetector, NoFalsePositivesInCalmLosslessNetwork) {
  WorldOptions options;
  options.group_size = 40;
  options.audit = false;
  FdFleet fleet(options);
  fleet.start_all();
  fleet.world.simulator().run_until(SimTime::seconds(3));
  for (const auto& d : fleet.detectors) {
    EXPECT_TRUE(d->suspected().empty()) << to_string(d->self());
  }
}

TEST(FailureDetector, CrashIsEventuallySuspectedByEveryone) {
  WorldOptions options;
  options.group_size = 40;
  options.audit = false;
  FdFleet fleet(options);
  fleet.start_all();
  fleet.world.simulator().schedule_at(SimTime::millis(200), [&fleet] {
    fleet.world.group().crash(MemberId{7});
  });
  fleet.world.simulator().run_until(SimTime::seconds(3));
  for (const auto& d : fleet.detectors) {
    if (d->self() == MemberId{7}) continue;
    EXPECT_TRUE(d->suspects(MemberId{7})) << to_string(d->self());
    // And only that member.
    EXPECT_EQ(d->suspected().size(), 1u) << to_string(d->self());
  }
}

TEST(FailureDetector, DetectionSurvivesHeavyLoss) {
  WorldOptions options;
  options.group_size = 40;
  options.loss = 0.4;
  options.audit = false;
  FdConfig config;
  config.fail_rounds = 40;  // more slack for the lossy network
  FdFleet fleet(options, config);
  fleet.start_all();
  fleet.world.simulator().schedule_at(SimTime::millis(200), [&fleet] {
    fleet.world.group().crash(MemberId{3});
  });
  fleet.world.simulator().run_until(SimTime::seconds(5));
  std::size_t detectors_suspecting = 0;
  std::size_t false_positives = 0;
  for (const auto& d : fleet.detectors) {
    if (d->self() == MemberId{3}) continue;
    if (d->suspects(MemberId{3})) ++detectors_suspecting;
    false_positives += d->suspected().size() - (d->suspects(MemberId{3}) ? 1 : 0);
  }
  EXPECT_EQ(detectors_suspecting, 39u);
  EXPECT_EQ(false_positives, 0u);
}

TEST(FailureDetector, AggressiveTimeoutCausesFalsePositivesUnderLoss) {
  // The accuracy/latency tension that makes "accurate failure detectors"
  // expensive (§6.2): a tight timeout plus a lossy network suspects live
  // members.
  WorldOptions options;
  options.group_size = 40;
  options.loss = 0.5;
  options.audit = false;
  FdConfig config;
  config.fail_rounds = 4;  // aggressive
  config.fanout = 1;
  FdFleet fleet(options, config);
  fleet.start_all();
  fleet.world.simulator().run_until(SimTime::seconds(2));
  std::size_t false_positives = 0;
  for (const auto& d : fleet.detectors) {
    false_positives += d->suspected().size();
  }
  EXPECT_GT(false_positives, 0u);
}

TEST(FailureDetector, RecoveredHeartbeatClearsSuspicion) {
  WorldOptions options;
  options.group_size = 20;
  options.audit = false;
  FdFleet fleet(options);
  fleet.start_all();
  fleet.world.simulator().schedule_at(SimTime::millis(100), [&fleet] {
    fleet.world.group().crash(MemberId{5});
  });
  // Suspicion must exist mid-run...
  fleet.world.simulator().run_until(SimTime::seconds(1));
  EXPECT_TRUE(fleet.detectors[0]->suspects(MemberId{5}));
  // ...then the member recovers; its detector halted, so restart it.
  fleet.world.group().recover(MemberId{5});
  fleet.detectors[5]->start(fleet.world.simulator().now());
  fleet.world.simulator().run_until(SimTime::seconds(2));
  EXPECT_FALSE(fleet.detectors[0]->suspects(MemberId{5}));
}

TEST(FailureDetector, MessageCostIsConstantPerMemberPerRound) {
  WorldOptions options;
  options.group_size = 60;
  options.audit = false;
  FdConfig config;
  config.fanout = 2;
  FdFleet fleet(options, config);
  fleet.start_all();
  fleet.world.simulator().run_until(SimTime::seconds(1));
  for (const auto& d : fleet.detectors) {
    EXPECT_LE(d->messages_sent(), d->rounds_executed() * config.fanout);
    EXPECT_GE(d->messages_sent(), d->rounds_executed() * config.fanout / 2);
  }
}

TEST(FailureDetector, DetectionLatencyIsBoundedByFailRoundsPlusSpread) {
  WorldOptions options;
  options.group_size = 50;
  options.audit = false;
  FdConfig config;
  config.fail_rounds = 20;
  FdFleet fleet(options, config);
  fleet.start_all();
  const SimTime crash_at = SimTime::millis(300);
  fleet.world.simulator().schedule_at(crash_at, [&fleet] {
    fleet.world.group().crash(MemberId{9});
  });
  fleet.world.simulator().run_until(SimTime::seconds(5));

  for (const auto& d : fleet.detectors) {
    if (d->self() == MemberId{9}) continue;
    const auto since = d->suspected_since(MemberId{9});
    ASSERT_TRUE(since.has_value());
    // Suspected no earlier than fail_rounds after the crash round (~30) and
    // within fail_rounds + epidemic spread slack.
    EXPECT_GE(*since, 30u + config.fail_rounds - 2);
    EXPECT_LE(*since, 30u + config.fail_rounds + 25);
  }
}

TEST(FailureDetector, StartTwiceThrows) {
  WorldOptions options;
  options.group_size = 4;
  options.audit = false;
  FdFleet fleet(options);
  fleet.detectors[0]->start(SimTime::zero());
  EXPECT_THROW(fleet.detectors[0]->start(SimTime::zero()), PreconditionError);
}

}  // namespace
}  // namespace gridbox::protocols::fd
