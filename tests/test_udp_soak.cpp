// Loopback soak (ctest label `slow`): many back-to-back one-shot UDP runs
// in one process, hunting the leaks a single run cannot show — file
// descriptors that survive a run, ports left unreleasable, reactor state
// bleeding between instances. Every run must be audit-clean, and the
// process fd count must come back to its baseline after every instance.
//
// Port discipline: this test owns the 48xxx window; instances alternate
// between two bases so a lingering TIME_WAIT-ish kernel state (not that
// UDP has one — belt and braces) could never serialize into flakes.
#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdint>

#include "src/runner/udp_runtime.h"

namespace gridbox {
namespace {

/// Open descriptors of this process, via /proc/self/fd. The readdir
/// traversal itself holds one fd; the caller compares counts, so the
/// constant offset cancels.
[[nodiscard]] std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(UdpSoak, TwoHundredOneShotRunsStayAuditCleanWithoutLeakingFds) {
  constexpr std::size_t kInstances = 200;
  constexpr std::size_t kGroupSize = 64;

  runner::UdpRunConfig base;
  base.experiment.group_size = kGroupSize;
  base.experiment.ucast_loss = 0.0;  // loss comes from the chaos spec below
  base.experiment.crash_probability = 0.0;
  base.experiment.chaos_spec = "loss 0.1\n";
  base.experiment.audit = true;
  base.experiment.gossip.round_duration = SimTime::millis(2);

  // First instance warms lazily-created process state (resolver caches,
  // gtest internals); the fd baseline is taken after it.
  {
    runner::UdpRunConfig warm = base;
    warm.experiment.seed = 1;
    warm.port_base = 48000;
    const auto result = runner::run_udp_experiment(warm);
    ASSERT_TRUE(result.completed);
  }
  const std::size_t baseline_fds = open_fd_count();
  ASSERT_GT(baseline_fds, 0u) << "/proc/self/fd unavailable";

  for (std::size_t i = 0; i < kInstances; ++i) {
    runner::UdpRunConfig config = base;
    config.experiment.seed = 100 + i;
    config.port_base = static_cast<std::uint16_t>(i % 2 == 0 ? 48000 : 49000);

    const auto result = runner::run_udp_experiment(config);
    ASSERT_TRUE(result.completed) << "instance " << i << " missed deadline";
    ASSERT_EQ(result.invariant_violations, 0u)
        << "instance " << i << ": " << result.first_violation;
    ASSERT_EQ(result.measurement.audit_violations, 0u) << "instance " << i;
    ASSERT_EQ(result.measurement.reconstruction_failures, 0u)
        << "instance " << i;
    ASSERT_EQ(result.measurement.finished_nodes, kGroupSize)
        << "instance " << i;

    const std::size_t fds = open_fd_count();
    ASSERT_EQ(fds, baseline_fds)
        << "fd leak after instance " << i << ": " << baseline_fds << " -> "
        << fds;
  }
}

}  // namespace
}  // namespace gridbox
