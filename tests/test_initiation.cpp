// Flood-based protocol initiation (§2's multicast start, built from unicast).
#include "src/protocols/gossip/initiation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/protocols/gossip/hier_gossip.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::gossip {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

struct FloodFixture {
  explicit FloodFixture(WorldOptions options, FloodConfig config = {})
      : world(options) {
    const membership::View view = world.group().full_view();
    // Callbacks hold references into start_times: size it up front so the
    // vector never reallocates under them.
    start_times.reserve(world.group().size());
    for (const MemberId m : world.group().members()) {
      start_times.emplace_back();
      auto& my_start = start_times.back();
      starters.push_back(std::make_unique<FloodStarter>(
          m, view, world.simulator(), world.network(),
          world.rng().derive(0xF100D + m.value()), config,
          [this, &my_start](std::uint64_t instance) {
            my_start.push_back({instance, world.simulator().now()});
          }));
    }
    // Attach starters directly (no protocol behind them in these tests).
    for (std::size_t i = 0; i < starters.size(); ++i) {
      endpoints.push_back(std::make_unique<StarterEndpoint>(*starters[i]));
      world.network().attach(world.group().members()[i], *endpoints.back());
    }
  }

  struct StarterEndpoint final : net::Endpoint {
    explicit StarterEndpoint(FloodStarter& s) : starter(&s) {}
    void on_message(const net::Message& m) override {
      (void)starter->on_message(m);
    }
    FloodStarter* starter;
  };

  World world;
  std::vector<std::unique_ptr<FloodStarter>> starters;
  std::vector<std::unique_ptr<StarterEndpoint>> endpoints;
  std::vector<std::vector<std::pair<std::uint64_t, SimTime>>> start_times;
};

TEST(FloodStarter, ReachesEveryMemberLossless) {
  WorldOptions options;
  options.group_size = 100;
  FloodFixture f(options);
  f.starters[0]->initiate(1);
  f.world.simulator().run();
  for (const auto& starts : f.start_times) {
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0].first, 1u);
  }
}

TEST(FloodStarter, StartSkewIsLogarithmicNotLinear) {
  WorldOptions options;
  options.group_size = 128;
  FloodFixture f(options);
  f.starters[0]->initiate(1);
  f.world.simulator().run();
  SimTime last = SimTime::zero();
  for (const auto& starts : f.start_times) {
    last = std::max(last, starts.at(0).second);
  }
  // Fanout 3, 128 members: everyone starts within ~log_3(128) ~= 5 rounds
  // (10ms each) plus latency; allow 10 rounds of slack.
  EXPECT_LE(last, SimTime::millis(100));
}

TEST(FloodStarter, DuplicateStartsFireCallbackOnce) {
  WorldOptions options;
  options.group_size = 30;
  FloodFixture f(options);
  f.starters[0]->initiate(1);
  f.starters[5]->initiate(1);  // concurrent second initiator, same instance
  f.world.simulator().run();
  for (const auto& starts : f.start_times) {
    EXPECT_EQ(starts.size(), 1u);  // every member started exactly once
  }
}

TEST(FloodStarter, SurvivesHeavyLoss) {
  WorldOptions options;
  options.group_size = 100;
  options.loss = 0.5;
  FloodConfig config;
  config.fanout = 4;
  config.repeat_rounds = 6;
  FloodFixture f(options, config);
  f.starters[0]->initiate(1);
  f.world.simulator().run();
  std::size_t reached = 0;
  for (const auto& starts : f.start_times) reached += starts.size();
  EXPECT_GE(reached, 95u);  // epidemic floods shrug off 50% loss
}

TEST(FloodStarter, SuccessiveInstancesEachFireOnce) {
  WorldOptions options;
  options.group_size = 40;
  FloodFixture f(options);
  f.starters[0]->initiate(1);
  f.world.simulator().run();
  f.starters[0]->initiate(2);
  f.world.simulator().run();
  for (const auto& starts : f.start_times) {
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0].first, 1u);
    EXPECT_EQ(starts[1].first, 2u);
  }
}

TEST(FloodStarter, StaleInstanceIsIgnored) {
  WorldOptions options;
  options.group_size = 10;
  FloodFixture f(options);
  f.starters[0]->initiate(5);
  f.world.simulator().run();
  f.starters[0]->initiate(3);  // older instance: no effect anywhere
  f.world.simulator().run();
  for (const auto& starts : f.start_times) {
    EXPECT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0].first, 5u);
  }
}

TEST(FloodInitiation, EndToEndGossipStartedByFlood) {
  // The full §2 picture: an initiator floods START; each member's callback
  // launches its HierGossipNode; the aggregation completes group-wide.
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);

  GossipConfig gossip_config;
  gossip_config.k = 4;
  gossip_config.fanout_m = 2;
  gossip_config.round_multiplier_c = 3.0;

  const membership::View view = world.group().full_view();
  std::vector<std::unique_ptr<HierGossipNode>> nodes;
  std::vector<std::unique_ptr<FloodStarter>> starters;
  std::vector<std::unique_ptr<MessageDemux>> demuxes;

  for (const MemberId m : world.group().members()) {
    nodes.push_back(std::make_unique<HierGossipNode>(
        m, world.votes().of(m), view, world.env(),
        world.rng().derive(0x1000 + m.value()), gossip_config));
    HierGossipNode* node = nodes.back().get();
    starters.push_back(std::make_unique<FloodStarter>(
        m, view, world.simulator(), world.network(),
        world.rng().derive(0x2000 + m.value()), FloodConfig{},
        [node, &world](std::uint64_t) {
          node->start(world.simulator().now());
        }));
    demuxes.push_back(
        std::make_unique<MessageDemux>(*starters.back(), *node));
    world.network().attach(m, *demuxes.back());
  }

  starters[17]->initiate(1);  // any member can initiate
  world.simulator().run();

  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    // Flood skew costs at most a few votes; coverage stays near-total.
    EXPECT_GE(node->outcome().estimate.count(), 60u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

}  // namespace
}  // namespace gridbox::protocols::gossip
