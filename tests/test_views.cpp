// Partial views (§2: complete views "can be relaxed in our final
// hierarchical gossiping solution").
#include <gtest/gtest.h>

#include "src/runner/experiment.h"

namespace gridbox::runner {
namespace {

ExperimentConfig partial_view_config(double coverage) {
  ExperimentConfig config;
  config.group_size = 150;
  config.ucast_loss = 0.1;
  config.crash_probability = 0.0;
  config.gossip.round_multiplier_c = 2.0;
  config.view_coverage = coverage;
  config.audit = true;
  return config;
}

TEST(PartialViews, GossipWorksWithHalfViews) {
  double total = 0.0;
  constexpr int kRuns = 6;
  for (int run = 0; run < kRuns; ++run) {
    ExperimentConfig config = partial_view_config(0.5);
    config.seed = 100 + run;
    const RunResult r = run_experiment(config);
    EXPECT_EQ(r.measurement.audit_violations, 0u);
    total += r.measurement.mean_completeness;
  }
  // Half views halve the peer pool but gossip only needs *enough* peers.
  // The residual loss is structural, not protocol failure: a member whose
  // grid box neither contains anyone it knows nor anyone who knows it
  // cannot export its vote (expected ~5% of members at coverage 0.5 with
  // boxes of ~3).
  EXPECT_GT(total / kRuns, 0.80);
}

TEST(PartialViews, CompletenessDegradesGracefullyWithCoverage) {
  const auto completeness_at = [](double coverage) {
    double total = 0.0;
    constexpr int kRuns = 6;
    for (int run = 0; run < kRuns; ++run) {
      ExperimentConfig config = partial_view_config(coverage);
      config.seed = 300 + run;
      total += run_experiment(config).measurement.mean_completeness;
    }
    return total / kRuns;
  };
  const double full = completeness_at(1.0);
  const double half = completeness_at(0.5);
  const double fifth = completeness_at(0.2);
  EXPECT_GE(full + 1e-9, half);
  EXPECT_GE(half, fifth);
  // Even at 20% views the protocol functions (graceful, not cliff-edge:
  // roughly half the votes still make it into a typical estimate).
  EXPECT_GT(fifth, 0.4);
}

TEST(PartialViews, EveryVoteStillCountsOnce) {
  ExperimentConfig config = partial_view_config(0.3);
  config.ucast_loss = 0.3;
  config.crash_probability = 0.003;
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_LE(r.measurement.mean_completeness, 1.0);
}

TEST(PartialViews, AllToAllAlsoSupportsThem) {
  ExperimentConfig config = partial_view_config(0.5);
  config.protocol = ProtocolKind::kFullyDistributed;
  config.ucast_loss = 0.0;
  const RunResult r = run_experiment(config);
  // Each member reaches only the ~50% it knows: completeness ~ coverage.
  EXPECT_NEAR(r.measurement.mean_completeness, 0.5, 0.1);
}

TEST(PartialViews, LeaderBaselineRejectsPartialViews) {
  ExperimentConfig config = partial_view_config(0.5);
  config.protocol = ProtocolKind::kLeaderElection;
  EXPECT_THROW((void)run_experiment(config), PreconditionError);
}

TEST(PartialViews, ZeroCoverageIsRejected) {
  ExperimentConfig config = partial_view_config(0.0);
  EXPECT_THROW((void)run_experiment(config), PreconditionError);
}

}  // namespace
}  // namespace gridbox::runner
