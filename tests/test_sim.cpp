#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/ensure.h"
#include "src/sim/event_queue.h"

namespace gridbox::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(SimTime{30}, [&] { fired.push_back(3); });
  q.push(SimTime{10}, [&] { fired.push_back(1); });
  q.push(SimTime{20}, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fire();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, EqualTimesStayFifoAcrossInterleavedPushAndPop) {
  // Regression for the vector+push_heap/pop_heap rewrite: popping must not
  // disturb the (time, sequence) order of the events left in the heap, even
  // when pushes and pops interleave at a single timestamp.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 4; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  q.pop().fire();  // 0
  for (int i = 4; i < 8; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  q.pop().fire();  // 1
  q.push(SimTime{5}, [&fired] { fired.push_back(8); });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), PreconditionError);
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  q.push(SimTime{42}, [] {});
  q.push(SimTime{7}, [] {});
  EXPECT_EQ(q.next_time(), SimTime{7});
}

TEST(EventQueue, ClearResets) {
  // clear() means "as if freshly constructed": pending events, the pushed
  // total, sequence numbering, AND the peak-size high-watermark all reset.
  EventQueue q;
  q.push(SimTime{1}, [] {});
  q.push(SimTime{2}, [] {});
  ASSERT_EQ(q.peak_size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.total_pushed(), 0u);
  EXPECT_EQ(q.peak_size(), 0u);
  // Sequence numbering restarts: same-time pushes after clear() still fire
  // in scheduling order, exactly like on a new queue.
  std::vector<int> fired;
  for (int i = 0; i < 3; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(q.total_pushed(), 3u);
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, PeakSizeTracksHighWatermark) {
  EventQueue q;
  EXPECT_EQ(q.peak_size(), 0u);
  q.push(SimTime{1}, [] {});
  q.push(SimTime{2}, [] {});
  q.push(SimTime{3}, [] {});
  (void)q.pop();
  (void)q.pop();
  q.push(SimTime{4}, [] {});
  EXPECT_EQ(q.peak_size(), 3u);  // never reached 4 after the pops
}

class CountingSink final : public FrameSink {
 public:
  void deliver_frame(const net::Message& message) override {
    delivered.push_back(message);
  }
  std::vector<net::Message> delivered;
};

TEST(EventQueue, DeliverFrameEventCarriesTheMessage) {
  EventQueue q;
  CountingSink sink;
  net::Message m{MemberId{1}, MemberId{2}, net::Frame{{0xAB, 0xCD}}};
  q.push(SimTime{3}, DeliverFrame{m, &sink});
  q.pop().fire();
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sink.delivered[0].source, MemberId{1});
  EXPECT_EQ(sink.delivered[0].destination, MemberId{2});
  EXPECT_EQ(sink.delivered[0].frame, (net::Frame{{0xAB, 0xCD}}));
}

class CountingTimer final : public TimerTarget {
 public:
  bool on_timer(std::uint32_t timer_id) override {
    ids.push_back(timer_id);
    return keep_going;
  }
  bool keep_going = true;
  std::vector<std::uint32_t> ids;
};

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime::underlying> times;
  sim.schedule_at(SimTime{100}, [&] { times.push_back(sim.now().ticks()); });
  sim.schedule_at(SimTime{50}, [&] { times.push_back(sim.now().ticks()); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(times, (std::vector<SimTime::underlying>{50, 100}));
  EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime{10}, [&] {
    sim.schedule_after(SimTime{5}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime{15});
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTime{100}, [&] {
    sim.schedule_at(SimTime{10}, [&] { fired = true; });  // in the past
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(SimTime{-1}, [] {}), PreconditionError);
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{10}, [&] { fired.push_back(10); });
  sim.schedule_at(SimTime{20}, [&] { fired.push_back(20); });
  sim.schedule_at(SimTime{30}, [&] { fired.push_back(30); });
  sim.run_until(SimTime{20});
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), SimTime{20});
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime{500});
  EXPECT_EQ(sim.now(), SimTime{500});
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime{1}, [&] { ++count; });
  sim.schedule_at(SimTime{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRunsUntilTickReturnsFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_periodic(SimTime{0}, SimTime{10}, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), SimTime{40});
}

TEST(Simulator, PeriodicIntervalMustBePositive) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(SimTime{0}, SimTime{0}, [] { return false; }),
               PreconditionError);
}

TEST(Simulator, EventLimitCatchesRunawayLoops) {
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_THROW(sim.run(), InvariantError);
}

TEST(Simulator, EventLimitIsLifetimeAcrossRunUntilCalls) {
  // Regression: the runaway-reschedule guard used to reset per call, so a
  // caller stepping time forward with repeated run_until() never tripped it.
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_NO_THROW(sim.run_until(SimTime{50}));
  EXPECT_THROW(sim.run_until(SimTime{1000}), InvariantError);
}

TEST(Simulator, EventLimitIsLifetimeAcrossMixedRunCalls) {
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_NO_THROW(sim.run_until(SimTime{80}));
  EXPECT_THROW(sim.run(), InvariantError);  // 81st..101st event trips it
}

TEST(Simulator, EventsExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, TypedPeriodicTimerReArmsWhileTrue) {
  Simulator sim;
  class FiveTicks final : public TimerTarget {
   public:
    explicit FiveTicks(Simulator& s) : sim_(&s) {}
    bool on_timer(std::uint32_t) override {
      times.push_back(sim_->now().ticks());
      return times.size() < 5;
    }
    Simulator* sim_;
    std::vector<SimTime::underlying> times;
  } target(sim);
  sim.schedule_periodic(SimTime{0}, SimTime{10}, target);
  sim.run();
  EXPECT_EQ(target.times,
            (std::vector<SimTime::underlying>{0, 10, 20, 30, 40}));
  EXPECT_EQ(sim.now(), SimTime{40});
}

TEST(Simulator, TypedPeriodicTimerPassesTimerId) {
  Simulator sim;
  CountingTimer target;
  target.keep_going = false;
  sim.schedule_periodic(SimTime{5}, SimTime{10}, target, 7);
  sim.run();
  EXPECT_EQ(target.ids, (std::vector<std::uint32_t>{7}));
}

TEST(Simulator, TypedOneShotTimerIgnoresReturnValue) {
  Simulator sim;
  CountingTimer target;
  target.keep_going = true;  // would re-arm if periodic; must not here
  sim.schedule_timer_at(SimTime{3}, target, 1);
  sim.run();
  EXPECT_EQ(target.ids.size(), 1u);
  EXPECT_EQ(sim.now(), SimTime{3});
}

TEST(Simulator, TypedAndClosurePeriodicTimersTickIdentically) {
  // The typed timer must be a drop-in for the closure Repeater: same tick
  // times, same executed-event count, so traces do not shift.
  const auto run_closure = [] {
    Simulator sim;
    std::vector<SimTime::underlying> times;
    sim.schedule_periodic(SimTime{2}, SimTime{7}, [&] {
      times.push_back(sim.now().ticks());
      return times.size() < 4;
    });
    sim.run();
    return std::pair{times, sim.events_executed()};
  };
  const auto run_typed = [] {
    Simulator sim;
    class T final : public TimerTarget {
     public:
      explicit T(Simulator& s) : sim_(&s) {}
      bool on_timer(std::uint32_t) override {
        times.push_back(sim_->now().ticks());
        return times.size() < 4;
      }
      Simulator* sim_;
      std::vector<SimTime::underlying> times;
    } target(sim);
    sim.schedule_periodic(SimTime{2}, SimTime{7}, target);
    sim.run();
    return std::pair{target.times, sim.events_executed()};
  };
  EXPECT_EQ(run_closure(), run_typed());
}

TEST(Simulator, ScheduleFrameAfterDeliversToSink) {
  Simulator sim;
  CountingSink sink;
  const net::Message m{MemberId{4}, MemberId{5}, net::Frame{{9, 9, 9}}};
  sim.schedule_at(SimTime{10}, [&] {
    sim.schedule_frame_after(SimTime{6}, m, sink);
  });
  sim.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sim.now(), SimTime{16});
  EXPECT_EQ(sink.delivered[0].frame.size(), 3u);
}

TEST(Simulator, InterleavedSchedulingIsDeterministic) {
  // Two structurally identical simulations must produce identical traces.
  const auto trace = [] {
    Simulator sim;
    std::vector<int> fired;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime{i % 7}, [&fired, i] { fired.push_back(i); });
    }
    sim.run();
    return fired;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace gridbox::sim
