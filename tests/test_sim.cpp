#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/ensure.h"
#include "src/sim/event_queue.h"

namespace gridbox::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(SimTime{30}, [&] { fired.push_back(3); });
  q.push(SimTime{10}, [&] { fired.push_back(1); });
  q.push(SimTime{20}, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, EqualTimesStayFifoAcrossInterleavedPushAndPop) {
  // Regression for the vector+push_heap/pop_heap rewrite: popping must not
  // disturb the (time, sequence) order of the events left in the heap, even
  // when pushes and pops interleave at a single timestamp.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 4; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  q.pop().action();  // 0
  for (int i = 4; i < 8; ++i) {
    q.push(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  q.pop().action();  // 1
  q.push(SimTime{5}, [&fired] { fired.push_back(8); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), PreconditionError);
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  q.push(SimTime{42}, [] {});
  q.push(SimTime{7}, [] {});
  EXPECT_EQ(q.next_time(), SimTime{7});
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(SimTime{1}, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_pushed(), 0u);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime::underlying> times;
  sim.schedule_at(SimTime{100}, [&] { times.push_back(sim.now().ticks()); });
  sim.schedule_at(SimTime{50}, [&] { times.push_back(sim.now().ticks()); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(times, (std::vector<SimTime::underlying>{50, 100}));
  EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime{10}, [&] {
    sim.schedule_after(SimTime{5}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime{15});
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTime{100}, [&] {
    sim.schedule_at(SimTime{10}, [&] { fired = true; });  // in the past
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(SimTime{-1}, [] {}), PreconditionError);
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{10}, [&] { fired.push_back(10); });
  sim.schedule_at(SimTime{20}, [&] { fired.push_back(20); });
  sim.schedule_at(SimTime{30}, [&] { fired.push_back(30); });
  sim.run_until(SimTime{20});
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), SimTime{20});
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime{500});
  EXPECT_EQ(sim.now(), SimTime{500});
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime{1}, [&] { ++count; });
  sim.schedule_at(SimTime{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRunsUntilTickReturnsFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_periodic(SimTime{0}, SimTime{10}, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), SimTime{40});
}

TEST(Simulator, PeriodicIntervalMustBePositive) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(SimTime{0}, SimTime{0}, [] { return false; }),
               PreconditionError);
}

TEST(Simulator, EventLimitCatchesRunawayLoops) {
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_THROW(sim.run(), InvariantError);
}

TEST(Simulator, EventLimitIsLifetimeAcrossRunUntilCalls) {
  // Regression: the runaway-reschedule guard used to reset per call, so a
  // caller stepping time forward with repeated run_until() never tripped it.
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_NO_THROW(sim.run_until(SimTime{50}));
  EXPECT_THROW(sim.run_until(SimTime{1000}), InvariantError);
}

TEST(Simulator, EventLimitIsLifetimeAcrossMixedRunCalls) {
  Simulator sim;
  sim.set_event_limit(100);
  sim.schedule_periodic(SimTime{0}, SimTime{1}, [] { return true; });
  EXPECT_NO_THROW(sim.run_until(SimTime{80}));
  EXPECT_THROW(sim.run(), InvariantError);  // 81st..101st event trips it
}

TEST(Simulator, EventsExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, InterleavedSchedulingIsDeterministic) {
  // Two structurally identical simulations must produce identical traces.
  const auto trace = [] {
    Simulator sim;
    std::vector<int> fired;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime{i % 7}, [&fired, i] { fired.push_back(i); });
    }
    sim.run();
    return fired;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace gridbox::sim
