// Metrics registry + run-level metric determinism and reconciliation.
//
// Three layers:
//   1. Unit: counters/gauges/histograms and snapshot merge algebra.
//   2. Determinism: sweep-merged snapshots are bitwise-identical at
//      --jobs 1 and --jobs 8 (the PR-1 discipline extended to metrics).
//   3. Reconciliation: exported metric totals agree exactly with the
//      transport's own NetworkStats on all four protocols, under chaos —
//      the differential-oracle worlds cross-checked against a second,
//      independent accounting path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/runner/config.h"
#include "src/runner/experiment.h"
#include "src/runner/sweep.h"

namespace gridbox {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("a").inc();
  registry.counter("a").inc(4);
  registry.gauge("g").set(7);
  registry.gauge("g").set_max(3);  // lower: ignored
  registry.gauge("g").set_max(9);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or_zero("a"), 5u);
  EXPECT_EQ(snap.counter_or_zero("missing"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), 9u);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram h({10, 20});
  h.observe(0);
  h.observe(10);  // at the bound: first bucket
  h.observe(11);  // above: second bucket
  h.observe(20);
  h.observe(21);  // overflow bucket
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.total(), 5u);
}

// The production fanout histogram's bucket edges, value by value: each edge
// lands in its own bucket (bounds are inclusive upper limits), interior
// values fall into the first bucket whose edge is >= the value.
TEST(Metrics, FanoutHistogramBucketEdges) {
  Histogram h({0, 1, 2, 3, 4, 6, 8, 16});
  for (const std::uint64_t v : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 17}) {
    h.observe(v);
  }
  ASSERT_EQ(h.counts().size(), 9u);
  EXPECT_EQ(h.counts()[0], 1u);  // {0}
  EXPECT_EQ(h.counts()[1], 1u);  // {1}
  EXPECT_EQ(h.counts()[2], 1u);  // {2}
  EXPECT_EQ(h.counts()[3], 1u);  // {3}
  EXPECT_EQ(h.counts()[4], 1u);  // {4}
  EXPECT_EQ(h.counts()[5], 2u);  // (4,6] = {5,6}
  EXPECT_EQ(h.counts()[6], 2u);  // (6,8] = {7,8}
  EXPECT_EQ(h.counts()[7], 2u);  // (8,16] = {9,16}
  EXPECT_EQ(h.counts()[8], 1u);  // >16 overflow
  EXPECT_EQ(h.total(), 12u);
}

MetricsSnapshot snapshot_with(std::uint64_t a, std::uint64_t gauge,
                              std::vector<std::uint64_t> hist_counts) {
  MetricsRegistry registry;
  registry.counter("c").inc(a);
  registry.gauge("g").set(gauge);
  Histogram& h = registry.histogram("h", {1, 2});
  for (std::size_t bucket = 0; bucket < hist_counts.size(); ++bucket) {
    for (std::uint64_t i = 0; i < hist_counts[bucket]; ++i) {
      h.observe(bucket == 0 ? 1 : bucket == 1 ? 2 : 3);
    }
  }
  return registry.snapshot();
}

// Counters sum, gauges take the max, histograms add bucket-wise — and the
// fold is associative, so the sweep reducer's slot order is irrelevant.
TEST(Metrics, SnapshotMergeSemanticsAndAssociativity) {
  const MetricsSnapshot a = snapshot_with(1, 5, {1, 0, 0});
  const MetricsSnapshot b = snapshot_with(2, 9, {0, 2, 0});
  const MetricsSnapshot c = snapshot_with(4, 7, {0, 0, 3});

  MetricsSnapshot ab = a;
  ab.merge(b);
  EXPECT_EQ(ab.counter_or_zero("c"), 3u);
  EXPECT_EQ(ab.gauges.at("g"), 9u);
  EXPECT_EQ(ab.histograms.at("h").counts, (std::vector<std::uint64_t>{1, 2, 0}));

  MetricsSnapshot ab_c = ab;
  ab_c.merge(c);
  MetricsSnapshot bc = b;
  bc.merge(c);
  MetricsSnapshot a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.to_json(), a_bc.to_json());

  // Commutativity too: the reducer does not rely on it, but it is part of
  // the documented contract.
  MetricsSnapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

TEST(Metrics, MergeIntoEmptyAdoptsEverything) {
  const MetricsSnapshot a = snapshot_with(3, 2, {1, 1, 1});
  MetricsSnapshot empty;
  empty.merge(a);
  EXPECT_EQ(empty.to_json(), a.to_json());
}

TEST(Metrics, SnapshotJsonIsNameOrderedAndStable) {
  MetricsRegistry registry;
  registry.counter("zeta").inc();
  registry.counter("alpha").inc(2);
  const std::string json = registry.snapshot().to_json();
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  EXPECT_EQ(json, registry.snapshot().to_json());
}

ExperimentConfig metrics_config() {
  ExperimentConfig config;
  config.group_size = 48;
  config.ucast_loss = 0.2;
  config.crash_probability = 0.001;
  config.collect_metrics = true;
  config.seed = 77;
  return config;
}

// The headline determinism guarantee: identical merged metric snapshots —
// and identical sweep points — whether the sweep ran on 1 thread or 8.
TEST(Metrics, SweepSnapshotsBitwiseIdenticalAcrossJobs) {
  const auto run_at = [](std::size_t jobs) {
    ExperimentConfig base = metrics_config();
    base.jobs = jobs;
    return runner::run_sweep(
        base, "loss", {0.0, 0.15, 0.3},
        [](ExperimentConfig& c, double x) { c.ucast_loss = x; }, 4);
  };
  const runner::SweepResult serial = run_at(1);
  const runner::SweepResult parallel = run_at(8);

  ASSERT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.metrics.to_json(), parallel.metrics.to_json());
  EXPECT_EQ(serial.total_sim_events, parallel.total_sim_events);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].incompleteness.mean,
              parallel.points[i].incompleteness.mean);
    EXPECT_EQ(serial.points[i].messages.mean, parallel.points[i].messages.mean);
  }
}

// Histogram merge at bucket boundaries: sweeping the gossip fanout over
// values that sit exactly on the fanout histogram's edges (1, 2, 4) must
// merge per-run histograms into identical counts at --jobs 1 and --jobs 8 —
// no observation may migrate across a bucket edge during the merge.
TEST(Metrics, FanoutHistogramMergeIdenticalAcrossJobs) {
  const auto run_at = [](std::size_t jobs) {
    ExperimentConfig base = metrics_config();
    base.jobs = jobs;
    return runner::run_sweep(
        base, "m", {1.0, 2.0, 4.0},
        [](ExperimentConfig& c, double x) {
          c.gossip.fanout_m = static_cast<std::uint32_t>(x);
        },
        3);
  };
  const runner::SweepResult serial = run_at(1);
  const runner::SweepResult parallel = run_at(8);

  const auto& serial_hist = serial.metrics.histograms.at("gossip_fanout_hist");
  const auto& parallel_hist =
      parallel.metrics.histograms.at("gossip_fanout_hist");
  EXPECT_EQ(serial_hist.counts, parallel_hist.counts);
  EXPECT_EQ(serial_hist.bounds, parallel_hist.bounds);
  std::uint64_t total = 0;
  for (const std::uint64_t c : serial_hist.counts) total += c;
  EXPECT_EQ(total, serial.metrics.counter_or_zero("gossip_rounds"));
  EXPECT_EQ(serial.metrics.to_json(), parallel.metrics.to_json());
}

void expect_reconciles(const ExperimentConfig& config) {
  const RunResult result = runner::run_experiment(config);
  const MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());
  const net::NetworkStats& net = result.network;

  // The observer mirrors NetworkStats one-to-one; any divergence means an
  // instrumentation hook is missing or double-fires.
  EXPECT_EQ(m.counter_or_zero("msgs_sent"), net.messages_sent);
  EXPECT_EQ(m.counter_or_zero("msgs_dropped"), net.messages_dropped);
  EXPECT_EQ(m.counter_or_zero("msgs_duplicated"), net.messages_duplicated);
  EXPECT_EQ(m.counter_or_zero("msgs_delivered"), net.messages_delivered);
  EXPECT_EQ(m.counter_or_zero("msgs_dead_dest"), net.messages_dead_dest);
  EXPECT_EQ(m.counter_or_zero("msgs_malformed"), net.messages_malformed);
  EXPECT_EQ(m.counter_or_zero("bytes_on_wire"), net.bytes_sent);

  // Protocol-layer cross-check: network messages as measured by
  // protocol_stats equals the transport total equals the metric.
  EXPECT_EQ(m.counter_or_zero("msgs_sent"),
            result.measurement.network_messages);

  // Per-phase attribution is a partition of all sends.
  std::uint64_t by_phase = 0;
  for (const auto& [name, value] : m.counters) {
    if (name.rfind("msgs_sent_by_phase.", 0) == 0) by_phase += value;
  }
  EXPECT_EQ(by_phase, net.messages_sent);
}

// Chaos worlds exercise every drop/dup path; audit keeps the protocol
// accounting honest at the same time.
ExperimentConfig chaos_world(ProtocolKind protocol) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.group_size = 40;
  config.ucast_loss = 0.1;
  config.crash_probability = 0.0;
  config.collect_metrics = true;
  config.audit = true;
  config.chaos_spec =
      "loss 0.2\n"
      "dup p=0.15 extra=1 spread=400us\n"
      "jitter p=0.2 0us..1ms\n"
      "crash M5 at=30ms\n";
  config.seed = 1234;
  return config;
}

TEST(MetricsReconcile, HierGossipUnderChaos) {
  expect_reconciles(chaos_world(ProtocolKind::kHierGossip));
}

TEST(MetricsReconcile, FullyDistributedUnderChaos) {
  expect_reconciles(chaos_world(ProtocolKind::kFullyDistributed));
}

TEST(MetricsReconcile, CentralizedUnderChaos) {
  expect_reconciles(chaos_world(ProtocolKind::kCentralized));
}

TEST(MetricsReconcile, CommitteeUnderChaos) {
  expect_reconciles(chaos_world(ProtocolKind::kCommittee));
}

TEST(MetricsReconcile, LossyCrashyHierGossipWithoutChaos) {
  ExperimentConfig config = metrics_config();
  config.audit = true;
  expect_reconciles(config);
}

// Gossip-layer metrics only exist for hier-gossip: rounds recorded, fanout
// histogram totals match the round count, and the queue-depth gauge saw a
// nonempty queue.
TEST(MetricsReconcile, GossipRoundMetricsAreCoherent) {
  const RunResult result = runner::run_experiment(metrics_config());
  const MetricsSnapshot& m = result.metrics;
  const std::uint64_t rounds = m.counter_or_zero("gossip_rounds");
  EXPECT_GT(rounds, 0u);
  const auto& hist = m.histograms.at("gossip_fanout_hist");
  std::uint64_t observed = 0;
  for (const std::uint64_t c : hist.counts) observed += c;
  EXPECT_EQ(observed, rounds);
  EXPECT_GT(m.gauges.at("event_queue_depth"), 0u);
  EXPECT_EQ(m.gauges.at("sim_events"), result.sim_events);
  EXPECT_GT(m.counter_or_zero("finishes"), 0u);
  EXPECT_GT(m.counter_or_zero("phase_conclusions"), 0u);
}

// Timelines ride along with metrics and must agree with the counters.
TEST(MetricsReconcile, TimelineAgreesWithCounters) {
  const RunResult result = runner::run_experiment(metrics_config());
  std::uint64_t timeline_msgs = 0;
  std::uint64_t timeline_rounds = 0;
  std::uint64_t timeline_conclusions = 0;
  for (const auto& span : result.timeline.phases) {
    timeline_msgs += span.msgs_sent;
    timeline_rounds += span.rounds;
    timeline_conclusions += span.concluded;
  }
  EXPECT_EQ(timeline_msgs, result.metrics.counter_or_zero("msgs_sent"));
  EXPECT_EQ(timeline_rounds, result.metrics.counter_or_zero("gossip_rounds"));
  EXPECT_EQ(timeline_conclusions,
            result.metrics.counter_or_zero("phase_conclusions"));
}

// Metrics collection must not change what the run computes: same seed, same
// measurement, with and without instrumentation.
TEST(MetricsReconcile, CollectionDoesNotPerturbResults) {
  ExperimentConfig with = metrics_config();
  ExperimentConfig without = with;
  without.collect_metrics = false;
  const RunResult a = runner::run_experiment(with);
  const RunResult b = runner::run_experiment(without);
  EXPECT_EQ(a.measurement.mean_completeness, b.measurement.mean_completeness);
  EXPECT_EQ(a.measurement.network_messages, b.measurement.network_messages);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_TRUE(b.metrics.empty());
}

}  // namespace
}  // namespace gridbox
