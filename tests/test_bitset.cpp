#include "src/common/bitset.h"

#include <gtest/gtest.h>

#include "src/common/ensure.h"

namespace gridbox {
namespace {

TEST(MemberBitset, StartsEmpty) {
  MemberBitset b(100);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.empty());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(MemberBitset, SetAndTest) {
  MemberBitset b(130);  // crosses a word boundary
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_FALSE(b.test(128));
  EXPECT_EQ(b.count(), 4u);
}

TEST(MemberBitset, SetIsIdempotent) {
  MemberBitset b(10);
  b.set(3);
  b.set(3);
  EXPECT_EQ(b.count(), 1u);
}

TEST(MemberBitset, SetOutOfRangeThrows) {
  MemberBitset b(10);
  EXPECT_THROW(b.set(10), PreconditionError);
}

TEST(MemberBitset, TestOutOfRangeIsFalse) {
  MemberBitset b(10);
  EXPECT_FALSE(b.test(10));
  EXPECT_FALSE(b.test(1000));
}

TEST(MemberBitset, IntersectsDetectsSharedBits) {
  MemberBitset a(200);
  MemberBitset b(200);
  a.set(77);
  b.set(78);
  EXPECT_FALSE(a.intersects(b));
  b.set(77);
  EXPECT_TRUE(a.intersects(b));
}

TEST(MemberBitset, MergeIsSetUnion) {
  MemberBitset a(100);
  MemberBitset b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(50));
  EXPECT_TRUE(a.test(99));
}

TEST(MemberBitset, MergeWithEmptyUniverseIsNoop) {
  MemberBitset a(100);
  a.set(5);
  MemberBitset empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
}

TEST(MemberBitset, MergeIntoDefaultAdoptsOther) {
  MemberBitset a;
  MemberBitset b(100);
  b.set(42);
  a.merge(b);
  EXPECT_EQ(a.universe_size(), 100u);
  EXPECT_TRUE(a.test(42));
}

TEST(MemberBitset, MergeMismatchedUniversesThrows) {
  MemberBitset a(100);
  MemberBitset b(200);
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(MemberBitset, EqualityComparesContents) {
  MemberBitset a(64);
  MemberBitset b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_FALSE(a == b);
  b.set(10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gridbox
