#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gridbox::common {
namespace {

TEST(ThreadPool, ZeroTaskShutdown) {
  // Construct + destruct with nothing submitted: must not hang or leak.
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RunsAllTasksAndReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PendingTasksStillRunOnDestruction) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&executed] { ++executed; });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, SubmissionFromMultipleThreadsIsSafe) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &sum, t] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 64; ++i) {
        const long value = t * 64 + i;
        futures.push_back(pool.submit([&sum, value] { sum += value; }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (auto& submitter : submitters) submitter.join();
  // Sum of 0..255.
  EXPECT_EQ(sum.load(), 255L * 256L / 2L);
}

TEST(ThreadPool, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_jobs(5), 5u);
}

TEST(ThreadPool, ResolveJobsReadsEnvironment) {
  ASSERT_EQ(setenv("GRIDBOX_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_jobs(0), 3u);
  ASSERT_EQ(setenv("GRIDBOX_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);  // malformed -> hardware
  ASSERT_EQ(unsetenv("GRIDBOX_JOBS"), 0);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
}

}  // namespace
}  // namespace gridbox::common
