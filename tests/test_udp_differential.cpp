// UDP-vs-simulator differential oracle at tier-1 scale.
//
// Runs the same (config, seed) world through the discrete-event simulator
// and over real UDP sockets on loopback, and asserts the agreement
// definition of udp_differential.h: both runs complete, both are
// audit-clean, both reconstruct every estimate, and both report the
// bit-identical ground-truth value. The N=1000 version of this check lives
// in test_udp_scale.cpp (gridbox_udp_tests); here N stays small enough for
// the tier-1 wall-clock budget.
//
// Port discipline: this binary's tests own the 44xxx window.
#include <gtest/gtest.h>

#include "src/runner/udp_differential.h"

namespace gridbox {
namespace {

[[nodiscard]] runner::UdpRunConfig small_config(std::uint16_t port_base,
                                                std::uint64_t seed) {
  runner::UdpRunConfig config;
  config.experiment.group_size = 48;
  config.experiment.ucast_loss = 0.10;
  config.experiment.crash_probability = 0.0;
  config.experiment.gossip.round_duration = SimTime::millis(2);
  config.experiment.seed = seed;
  config.port_base = port_base;
  return config;
}

TEST(UdpDifferential, HierGossipAgreesWithTheSimulatorUnderLoss) {
  const auto report = runner::run_udp_differential(small_config(44000, 11));
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_TRUE(report.udp_run.completed);
  EXPECT_EQ(report.udp_run.invariant_violations, 0u)
      << report.udp_run.first_violation;
  // Bit-identical world: the ground truth is shared, not merely close.
  EXPECT_EQ(report.sim.measurement.true_value,
            report.udp.measurement.true_value);
  EXPECT_EQ(report.udp.measurement.finished_nodes,
            report.udp.measurement.survivors);
}

TEST(UdpDifferential, AgreesUnderAChaosSpec) {
  auto config = small_config(44100, 12);
  config.experiment.chaos_spec =
      "loss 0.1\n"
      "jitter p=0.2 0us..1000us\n"
      "dup p=0.05 extra=1 spread=500us\n";
  const auto report = runner::run_udp_differential(config);
  EXPECT_TRUE(report.ok()) << report.describe();
  // The dup directive must actually exercise the duplicate path on the
  // socket side; a vacuous pass here would mean the shim is not wired.
  EXPECT_GT(report.udp_run.network.messages_duplicated, 0u);
}

TEST(UdpDifferential, AgreesForTheAllToAllBaseline) {
  auto config = small_config(44200, 13);
  config.experiment.protocol = runner::ProtocolKind::kFullyDistributed;
  const auto report = runner::run_udp_differential(config);
  EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(UdpDifferential, DescribeNamesBothRows) {
  const auto report = runner::run_udp_differential(small_config(44300, 14));
  const std::string text = report.describe();
  EXPECT_NE(text.find("sim:"), std::string::npos) << text;
  EXPECT_NE(text.find("udp:"), std::string::npos) << text;
  EXPECT_NE(text.find("OK"), std::string::npos) << text;
}

}  // namespace
}  // namespace gridbox
