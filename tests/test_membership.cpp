#include "src/membership/group.h"

#include <gtest/gtest.h>

#include "src/common/ensure.h"
#include "src/membership/crash_model.h"
#include "src/membership/view.h"

namespace gridbox::membership {
namespace {

TEST(View, SortsAndDeduplicates) {
  View v({MemberId{5}, MemberId{1}, MemberId{5}, MemberId{3}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members()[0], MemberId{1});
  EXPECT_EQ(v.members()[1], MemberId{3});
  EXPECT_EQ(v.members()[2], MemberId{5});
}

TEST(View, ContainsUsesBinarySearch) {
  const View v = complete_view(100);
  EXPECT_TRUE(v.contains(MemberId{0}));
  EXPECT_TRUE(v.contains(MemberId{99}));
  EXPECT_FALSE(v.contains(MemberId{100}));
}

TEST(View, AddAndRemoveAreIdempotent) {
  View v;
  v.add(MemberId{7});
  v.add(MemberId{7});
  EXPECT_EQ(v.size(), 1u);
  v.remove(MemberId{7});
  v.remove(MemberId{7});
  EXPECT_TRUE(v.empty());
}

TEST(View, AddKeepsSortedOrder) {
  View v;
  v.add(MemberId{9});
  v.add(MemberId{2});
  v.add(MemberId{5});
  EXPECT_EQ(v.members()[0], MemberId{2});
  EXPECT_EQ(v.members()[1], MemberId{5});
  EXPECT_EQ(v.members()[2], MemberId{9});
}

TEST(View, SampleWhereExcludesSelfAndNonMatching) {
  const View v = complete_view(10);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const MemberId pick = v.sample_where(rng, MemberId{3}, [](MemberId m) {
      return m.value() % 2 == 1;  // odd members only
    });
    ASSERT_TRUE(pick.is_valid());
    EXPECT_NE(pick, MemberId{3});
    EXPECT_EQ(pick.value() % 2, 1u);
  }
}

TEST(View, SampleWhereReturnsInvalidWhenNoneQualify) {
  const View v = complete_view(3);
  Rng rng(2);
  const MemberId pick =
      v.sample_where(rng, MemberId{0}, [](MemberId) { return false; });
  EXPECT_FALSE(pick.is_valid());
}

TEST(View, SampleWhereIsUniform) {
  const View v = complete_view(5);
  Rng rng(3);
  std::vector<int> hits(5, 0);
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    const MemberId pick =
        v.sample_where(rng, MemberId{0}, [](MemberId) { return true; });
    ++hits[pick.value()];
  }
  EXPECT_EQ(hits[0], 0);  // self excluded
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kTrials, 0.25, 0.02);
  }
}

TEST(Group, StartsFullyAlive) {
  Group g(10);
  EXPECT_EQ(g.size(), 10u);
  EXPECT_EQ(g.alive_count(), 10u);
  for (const MemberId m : g.members()) EXPECT_TRUE(g.is_alive(m));
}

TEST(Group, CrashAndRecoverAreIdempotent) {
  Group g(4);
  g.crash(MemberId{2});
  g.crash(MemberId{2});
  EXPECT_EQ(g.alive_count(), 3u);
  EXPECT_FALSE(g.is_alive(MemberId{2}));
  g.recover(MemberId{2});
  g.recover(MemberId{2});
  EXPECT_EQ(g.alive_count(), 4u);
  EXPECT_TRUE(g.is_alive(MemberId{2}));
}

TEST(Group, OutOfRangeIdThrows) {
  Group g(3);
  EXPECT_THROW((void)g.is_alive(MemberId{3}), PreconditionError);
  EXPECT_THROW(g.crash(MemberId{7}), PreconditionError);
}

TEST(Group, FullViewCoversEveryMember) {
  Group g(25);
  const View v = g.full_view();
  EXPECT_EQ(v.size(), 25u);
  for (const MemberId m : g.members()) EXPECT_TRUE(v.contains(m));
}

TEST(Group, ScatterPositionsInUnitSquare) {
  Group g(200);
  Rng rng(4);
  g.scatter_positions(rng);
  ASSERT_TRUE(g.has_positions());
  for (const MemberId m : g.members()) {
    const Position p = g.position(m);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Group, GridPositionsAreRoughlyRegular) {
  Group g(100);
  Rng rng(5);
  g.grid_positions(rng, 0.0);  // no jitter
  // 100 members on a 10x10 grid: all distinct cell centres.
  for (std::size_t i = 0; i + 1 < 100; ++i) {
    const Position a = g.position(MemberId{static_cast<std::uint32_t>(i)});
    const Position b = g.position(MemberId{static_cast<std::uint32_t>(i + 1)});
    EXPECT_GT(squared_distance(a, b), 0.0);
  }
}

TEST(Group, PositionWithoutAssignmentThrows) {
  Group g(3);
  EXPECT_THROW((void)g.position(MemberId{0}), PreconditionError);
}

TEST(PerRoundCrash, ZeroNeverCrashes) {
  PerRoundCrash model(0.0);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.crashes(MemberId{0}, i, rng));
  }
}

TEST(PerRoundCrash, EmpiricalRateMatches) {
  PerRoundCrash model(0.01);
  Rng rng(7);
  int crashes = 0;
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    if (model.crashes(MemberId{0}, 0, rng)) ++crashes;
  }
  EXPECT_NEAR(static_cast<double>(crashes) / kTrials, 0.01, 0.002);
}

TEST(PerRoundCrash, RejectsOutOfRange) {
  EXPECT_THROW(PerRoundCrash{1.5}, PreconditionError);
}

TEST(ScheduledCrash, FiresOnlyAtScheduledRound) {
  ScheduledCrash model;
  model.add(MemberId{3}, 5);
  Rng rng(8);
  EXPECT_FALSE(model.crashes(MemberId{3}, 4, rng));
  EXPECT_TRUE(model.crashes(MemberId{3}, 5, rng));
  EXPECT_FALSE(model.crashes(MemberId{3}, 6, rng));
  EXPECT_FALSE(model.crashes(MemberId{4}, 5, rng));
}

TEST(Group, ApplyRoundCrashesKillsAndCounts) {
  Group g(50);
  ScheduledCrash model;
  model.add(MemberId{10}, 0);
  model.add(MemberId{20}, 0);
  model.add(MemberId{30}, 1);
  Rng rng(9);
  EXPECT_EQ(g.apply_round_crashes(model, 0, rng), 2u);
  EXPECT_EQ(g.alive_count(), 48u);
  EXPECT_EQ(g.apply_round_crashes(model, 1, rng), 1u);
  EXPECT_FALSE(g.is_alive(MemberId{30}));
}

TEST(Group, CrashedMembersDoNotRecrash) {
  Group g(5);
  PerRoundCrash model(1.0);
  Rng rng(10);
  EXPECT_EQ(g.apply_round_crashes(model, 0, rng), 5u);
  EXPECT_EQ(g.apply_round_crashes(model, 1, rng), 0u);
}

}  // namespace
}  // namespace gridbox::membership
