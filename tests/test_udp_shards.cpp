// Shard-count invariance of the real-socket runner (DESIGN.md §14).
//
// The reactor mesh partitions members over shard threads by id % shards,
// and every shard dispatches its own members lock-free. None of that may
// be observable in the result: the same (config, seed) world run at 1, 2,
// and 4 shards must complete, stay invariant-clean, and report the
// bit-identical ground-truth value — sharding is an execution detail, not
// a semantic one.
//
// Port discipline: this binary's tests own the 48xxx window.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/runner/udp_runtime.h"

namespace gridbox {
namespace {

[[nodiscard]] runner::UdpRunConfig shard_config(std::uint16_t port_base,
                                                std::size_t shards) {
  runner::UdpRunConfig config;
  config.experiment.group_size = 32;
  config.experiment.seed = 31;
  config.experiment.ucast_loss = 0.10;
  // Round-probability crashes race the wall clock (a member's crash timer
  // may or may not fire before the run completes, depending on host load),
  // so ground truth would not be run-to-run deterministic with pf > 0.
  // Every UDP gate zeroes it; scripted chaos crashes are the alternative.
  config.experiment.crash_probability = 0.0;
  config.experiment.gossip.round_duration = SimTime::millis(2);
  config.experiment.check_invariants = true;
  config.port_base = port_base;
  config.shards = shards;
  return config;
}

TEST(UdpShards, GroundTruthIsBitEqualAcrossShardCounts) {
  std::vector<runner::UdpRunResult> results;
  std::uint16_t port_base = 48000;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const runner::UdpRunResult r =
        runner::run_udp_experiment(shard_config(port_base, shards));
    port_base += 100;
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.shards, shards);
    EXPECT_EQ(r.invariant_violations, 0u) << r.first_violation;
    EXPECT_EQ(r.measurement.finished_nodes, r.measurement.survivors);
    results.push_back(r);
  }
  // Sharding must not leak into the answer: same world, same ground truth,
  // bit for bit, at every thread count.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].measurement.true_value,
              results[0].measurement.true_value);
    EXPECT_EQ(results[i].measurement.survivors,
              results[0].measurement.survivors);
  }
}

}  // namespace
}  // namespace gridbox
