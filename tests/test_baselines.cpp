#include <gtest/gtest.h>

#include <algorithm>

#include "src/protocols/baseline/centralized.h"
#include "src/protocols/baseline/fully_distributed.h"
#include "src/protocols/baseline/leader_election.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::baseline {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

TEST(FullyDistributed, LosslessReachesFullCompleteness) {
  WorldOptions options;
  options.group_size = 32;
  World world(options);
  auto nodes =
      world.make_nodes<FullyDistributedNode>(FullyDistributedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_EQ(node->outcome().estimate.count(), 32u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(FullyDistributed, MessageComplexityIsQuadratic) {
  WorldOptions options;
  options.group_size = 40;
  World world(options);
  auto nodes =
      world.make_nodes<FullyDistributedNode>(FullyDistributedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  // Exactly N(N-1) vote messages.
  EXPECT_EQ(world.network().stats().messages_sent, 40u * 39u);
}

TEST(FullyDistributed, TimeComplexityIsLinearInN) {
  // With bandwidth M per round, rounds ~ (N-1)/M: doubling N doubles time.
  const auto rounds_for = [](std::size_t n) {
    WorldOptions options;
    options.group_size = n;
    World world(options);
    auto nodes =
        world.make_nodes<FullyDistributedNode>(FullyDistributedConfig{});
    world.start_all(nodes);
    world.simulator().run();
    std::uint64_t max_rounds = 0;
    for (const auto& node : nodes) {
      max_rounds = std::max(max_rounds, node->rounds_executed());
    }
    return max_rounds;
  };
  const auto r32 = rounds_for(32);
  const auto r64 = rounds_for(64);
  EXPECT_NEAR(static_cast<double>(r64) / static_cast<double>(r32), 2.0, 0.3);
}

TEST(FullyDistributed, CompletenessTracksLossRate) {
  WorldOptions options;
  options.group_size = 60;
  options.loss = 0.4;
  World world(options);
  auto nodes =
      world.make_nodes<FullyDistributedNode>(FullyDistributedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  double total = 0.0;
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    total += static_cast<double>(node->outcome().estimate.count()) / 60.0;
  }
  // Expected completeness ~ (1-loss) plus own vote: 0.6 + 0.4/60 ~ 0.61.
  EXPECT_NEAR(total / 60.0, 0.61, 0.05);
}

TEST(Centralized, LosslessDeliversLeaderResultEverywhere) {
  WorldOptions options;
  options.group_size = 30;
  World world(options);
  auto nodes = world.make_nodes<CentralizedNode>(CentralizedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished()) << to_string(node->self());
    EXPECT_EQ(node->outcome().estimate.count(), 30u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(Centralized, MessageComplexityIsLinear) {
  WorldOptions options;
  options.group_size = 50;
  World world(options);
  auto nodes = world.make_nodes<CentralizedNode>(CentralizedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  // N-1 votes in, N-1 results out: exactly 2(N-1) messages.
  EXPECT_EQ(world.network().stats().messages_sent, 2u * 49u);
}

TEST(Centralized, LeaderCrashIsCatastrophic) {
  WorldOptions options;
  options.group_size = 30;
  // Kill the leader before it can possibly disseminate.
  options.chaos = "crash M0 at=1ms";
  World world(options);
  auto nodes = world.make_nodes<CentralizedNode>(CentralizedConfig{});
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    EXPECT_FALSE(node->finished());  // nobody gets an estimate
  }
}

TEST(Centralized, UnstaggeredSendsCauseImplosionDrops) {
  WorldOptions options;
  options.group_size = 120;
  World world(options);
  CentralizedConfig config;
  config.staggered_sends = false;
  config.leader_receive_cap = 8;
  auto nodes = world.make_nodes<CentralizedNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  // All 119 votes land in round 0; the leader can only absorb 8 per round.
  const auto* leader = nodes[0].get();
  EXPECT_GT(leader->implosion_drops(), 0u);
  EXPECT_LT(leader->outcome().estimate.count(), 120u);
}

TEST(Centralized, StaggeringAvoidsImplosion) {
  WorldOptions options;
  options.group_size = 120;
  World world(options);
  CentralizedConfig config;
  config.staggered_sends = true;
  config.leader_receive_cap = 8;
  auto nodes = world.make_nodes<CentralizedNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  EXPECT_EQ(nodes[0]->implosion_drops(), 0u);
  EXPECT_EQ(nodes[0]->outcome().estimate.count(), 120u);
}

TEST(LeaderElection, LosslessReachesFullCompleteness) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished()) << to_string(node->self());
    EXPECT_EQ(node->outcome().estimate.count(), 64u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(LeaderElection, MessageComplexityIsLinearish) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});
  world.start_all(nodes);
  world.simulator().run();
  // O(N): votes up + partials up + results down, each with phase_rounds=2
  // retransmissions. Far below gossip's N log^2 N at the same N.
  EXPECT_LT(world.network().stats().messages_sent, 64u * 12u);
}

TEST(LeaderElection, RootLeaderCrashLosesEveryone) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});

  // The root leader is the member with the globally smallest hash value.
  MemberId root_leader = MemberId{0};
  double best = 2.0;
  for (const MemberId m : world.group().members()) {
    if (world.hierarchy().hash_value(m) < best) {
      best = world.hierarchy().hash_value(m);
      root_leader = m;
    }
  }
  world.start_all(nodes);
  world.apply_chaos("crash M" + std::to_string(root_leader.value()) +
                    " at=1ms");
  world.simulator().run();

  for (const auto& node : nodes) {
    EXPECT_FALSE(node->finished());  // no root aggregate, no dissemination
  }
}

TEST(LeaderElection, BoxLeaderCrashLosesAboutOneBox) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<LeaderElectionNode>(CommitteeConfig{});

  // Pick the leader of member 1's grid box, excluding the root leader so the
  // protocol still completes.
  const auto& hier = world.hierarchy();
  MemberId box_leader = MemberId::invalid();
  double best = 2.0;
  for (const MemberId m : world.group().members()) {
    if (hier.box_of(m) != hier.box_of(MemberId{1})) continue;
    if (hier.hash_value(m) < best) {
      best = hier.hash_value(m);
      box_leader = m;
    }
  }
  ASSERT_TRUE(box_leader.is_valid());

  MemberId root_leader = MemberId{0};
  double root_best = 2.0;
  for (const MemberId m : world.group().members()) {
    if (hier.hash_value(m) < root_best) {
      root_best = hier.hash_value(m);
      root_leader = m;
    }
  }
  if (box_leader == root_leader) {
    GTEST_SKIP() << "box leader is the root leader in this draw";
  }

  std::size_t box_population = 0;
  for (const MemberId m : world.group().members()) {
    if (hier.box_of(m) == hier.box_of(MemberId{1})) ++box_population;
  }

  world.start_all(nodes);
  world.apply_chaos("crash M" + std::to_string(box_leader.value()) +
                    " at=1ms");
  world.simulator().run();

  // Survivors outside the dead box still finish, but the final estimate is
  // missing (at least) the dead leader's box. Members *inside* the dead box
  // are themselves cut off: their only dissemination path was the leader.
  for (const auto& node : nodes) {
    if (hier.box_of(node->self()) == hier.box_of(MemberId{1})) continue;
    ASSERT_TRUE(node->finished()) << to_string(node->self());
    EXPECT_LE(node->outcome().estimate.count(), 64u - box_population);
  }
}

TEST(Committee, ToleratesSingleLeaderCrashWithKPrime2) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  CommitteeConfig config;
  config.committee_size = 2;
  auto nodes = world.make_nodes<CommitteeNode>(config);

  // Crash the single globally-smallest-hash member (on every committee).
  MemberId first = MemberId{0};
  double best = 2.0;
  for (const MemberId m : world.group().members()) {
    if (world.hierarchy().hash_value(m) < best) {
      best = world.hierarchy().hash_value(m);
      first = m;
    }
  }
  world.start_all(nodes);
  world.apply_chaos("crash M" + std::to_string(first.value()) + " at=1ms");
  world.simulator().run();

  // The second committee member carries the protocol: most members finish
  // and coverage stays near-total (only the victim's own vote may be lost).
  std::size_t finished = 0;
  for (const auto& node : nodes) {
    if (node->self() == first) continue;
    if (node->finished()) {
      ++finished;
      EXPECT_GE(node->outcome().estimate.count(), 62u);
    }
  }
  EXPECT_GE(finished, 60u);
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

}  // namespace
}  // namespace gridbox::protocols::baseline
