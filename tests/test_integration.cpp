// Cross-module end-to-end checks: the contracts the paper's claims rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/completeness.h"
#include "src/runner/experiment.h"
#include "src/runner/sweep.h"

namespace gridbox {
namespace {

using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;
using runner::run_experiment;

ExperimentConfig paper_defaults() {
  // §7: N=200, ucastl=0.25, pf=0.001, K=4, M=2, C=1.0.
  ExperimentConfig config;
  config.group_size = 200;
  config.ucast_loss = 0.25;
  config.crash_probability = 0.001;
  config.gossip.k = 4;
  config.gossip.fanout_m = 2;
  config.gossip.round_multiplier_c = 1.0;
  return config;
}

TEST(Integration, PaperDefaultsDeliverHighCompleteness) {
  // At the paper's default operating point the measured incompleteness is
  // small (Figures 6-8 place it around 1e-3..1e-2); average over seeds.
  double total = 0.0;
  constexpr int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    ExperimentConfig config = paper_defaults();
    config.seed = 100 + run;
    total += run_experiment(config).measurement.mean_completeness;
  }
  const double mean = total / kRuns;
  EXPECT_GT(mean, 0.85);
  EXPECT_LE(mean, 1.0);
}

TEST(Integration, GossipDegradesGracefullyWhereLeaderIsCatastrophic) {
  // The paper's core robustness claim (§6.2 vs §6.3): under member crashes,
  // hierarchical gossip *degrades gracefully* — every run keeps most votes —
  // while single-leader aggregation has catastrophic runs: a leader crash at
  // height i silently drops ~K^i votes, and a root-leader crash drops all.
  double gossip_worst = 1.0;
  double leader_worst = 1.0;
  constexpr int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    ExperimentConfig config = paper_defaults();
    config.group_size = 128;
    config.ucast_loss = 0.05;
    config.crash_probability = 0.02;  // aggressive: make failures common
    config.gossip.round_multiplier_c = 2.0;
    config.seed = 200 + run;
    gossip_worst = std::min(
        gossip_worst, run_experiment(config).measurement.mean_completeness);

    config.protocol = ProtocolKind::kLeaderElection;
    leader_worst = std::min(
        leader_worst, run_experiment(config).measurement.mean_completeness);
  }
  EXPECT_GT(gossip_worst, 0.6);   // graceful: no run collapses
  EXPECT_LT(leader_worst, 0.5);   // catastrophic: some run loses big subtrees
  EXPECT_GT(gossip_worst, leader_worst);
}

TEST(Integration, GossipMessageCountIsNLog2NishNotN2) {
  // O(N log^2 N): far fewer messages than all-to-all at the same N, and the
  // per-member message count grows ~log^2 N.
  ExperimentConfig config = paper_defaults();
  config.group_size = 256;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.gossip.early_bump = false;  // full budget: worst case
  const RunResult gossip = run_experiment(config);

  config.protocol = ProtocolKind::kFullyDistributed;
  const RunResult full = run_experiment(config);

  EXPECT_LT(gossip.measurement.network_messages,
            full.measurement.network_messages / 3);
  // Exact worst-case budget: N * phases * rounds/phase * M.
  const std::uint64_t budget = 256ull * 4 * 8 * 2;
  EXPECT_LE(gossip.measurement.network_messages, budget);
}

TEST(Integration, GossipTimeComplexityGrowsPolyLog) {
  // Rounds executed ~ phases * rounds_per_phase = O(log^2 N): going from
  // N=64 to N=4096 (64x) should grow rounds by ~(phases 3->6, rounds 6->12),
  // i.e. about 4x, nothing near 64x.
  const auto rounds_for = [](std::size_t n) {
    ExperimentConfig config;
    config.group_size = n;
    config.ucast_loss = 0.0;
    config.crash_probability = 0.0;
    config.gossip.early_bump = false;
    return run_experiment(config).measurement.max_rounds;
  };
  const auto r_small = rounds_for(64);
  const auto r_big = rounds_for(4096);
  EXPECT_LT(r_big, r_small * 8);
}

TEST(Integration, AuditPassesAcrossAllProtocolsUnderFaults) {
  for (const ProtocolKind kind :
       {ProtocolKind::kHierGossip, ProtocolKind::kFullyDistributed,
        ProtocolKind::kCentralized, ProtocolKind::kLeaderElection,
        ProtocolKind::kCommittee}) {
    ExperimentConfig config = paper_defaults();
    config.protocol = kind;
    config.group_size = 96;
    config.ucast_loss = 0.3;
    config.crash_probability = 0.005;
    config.audit = true;
    config.committee.committee_size = 2;
    const RunResult r = run_experiment(config);
    EXPECT_EQ(r.measurement.audit_violations, 0u) << runner::to_string(kind);
  }
}

TEST(Integration, EstimateErrorShrinksWithCompleteness) {
  // §2: with votes that don't differ vastly, completeness ~ accuracy. The
  // mean absolute estimate error at low loss must be below the error at
  // high loss.
  const auto error_at = [](double loss) {
    double total = 0.0;
    constexpr int kRuns = 8;
    for (int run = 0; run < kRuns; ++run) {
      ExperimentConfig config;
      config.group_size = 150;
      config.ucast_loss = loss;
      config.crash_probability = 0.0;
      config.seed = 40 + run;
      total += run_experiment(config).measurement.mean_abs_error;
    }
    return total / kRuns;
  };
  EXPECT_LE(error_at(0.1), error_at(0.65));
}

TEST(Integration, MinMaxAggregatesAreExactOnceSeen) {
  // For min/max, any estimate that saw the extreme vote is exactly right;
  // lossless runs must produce the exact extreme at every member.
  for (const agg::AggregateKind kind :
       {agg::AggregateKind::kMin, agg::AggregateKind::kMax}) {
    ExperimentConfig config;
    config.group_size = 64;
    config.ucast_loss = 0.0;
    config.crash_probability = 0.0;
    config.gossip.round_multiplier_c = 4.0;  // lossless + generous: exact
    config.aggregate = kind;
    const RunResult r = run_experiment(config);
    EXPECT_DOUBLE_EQ(r.measurement.mean_abs_error, 0.0);
  }
}

TEST(Integration, SimulatedCompletenessIsNotWildlyBelowTheoryAtHighB) {
  // With C large enough that effective b >= 4, Theorem 1 promises >= 1-1/N.
  // The simulation (asynchronous, uniform latencies) should land in the same
  // regime: incompleteness comparable to 1/N, not orders of magnitude worse.
  ExperimentConfig config;
  config.group_size = 200;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.gossip.round_multiplier_c = 6.0;  // b ~ 1.5 per analysis round
  double worst = 0.0;
  for (int run = 0; run < 5; ++run) {
    config.seed = 300 + run;
    worst = std::max(worst,
                     run_experiment(config).measurement.mean_incompleteness);
  }
  EXPECT_LE(worst, 0.01);  // 1/N would be 0.005
}

}  // namespace
}  // namespace gridbox
