// gridbox_bench: the perf-regression harness.
//
// Runs fixed benchmark suites over the simulator and writes one
// schema-versioned BENCH_<suite>.json per suite (see src/obs/bench_io.h):
//
//   micro_core   -> BENCH_core.json    end-to-end runs at paper defaults,
//                                      with and without instrumentation
//   fig06_scale  -> BENCH_scale.json   the Figure 6 scalability slice
//   chaos_stress -> BENCH_chaos.json   chaos-scripted adversity worlds
//   service      -> BENCH_service.json streaming-epoch service runs
//                                      (sustained instances/s, p99
//                                      completion; both informational in
//                                      bench_diff, like B/member)
//   udp          -> BENCH_udp.json     the real-socket runner at 1/2/4
//                                      reactor shards, N = 1000 (shard
//                                      scaling of the lock-free dispatch
//                                      path; binds loopback sockets, so
//                                      not part of `all`)
//
// Wall times are medians over --repeats; sim_events / network_messages are
// deterministic per case (udp suite: representative, the wire is real), so
// a diff of two BENCH files (tools/bench_diff) separates "the code got
// slower" from "the workload changed".
//
// usage: gridbox_bench [--suite micro|scale|chaos|service|udp|all]
//                      [--quick] [--repeats R] [--out DIR] [--jobs N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "src/obs/bench_io.h"
#include "src/obs/build_info.h"
#include "src/obs/curves.h"
#include "src/obs/lineage.h"
#include "src/obs/perf_counters.h"
#include "src/obs/telemetry.h"
#include "src/runner/config.h"
#include "src/runner/experiment.h"
#include "src/runner/sweep.h"
#include "src/runner/udp_runtime.h"
#include "src/service/service.h"

namespace {

using gridbox::obs::BenchEntry;
using gridbox::obs::BenchReport;
using gridbox::runner::ExperimentConfig;
using gridbox::runner::ProtocolKind;
using gridbox::runner::RunResult;

struct BenchOptions {
  bool micro = true;
  bool scale = true;
  bool chaos = true;
  bool service = true;
  bool udp = false;  ///< binds loopback sockets; opt-in, not part of `all`
  bool quick = false;
  bool huge = false;  ///< add the 10^6-member scale point
  bool obs_overhead = false;  ///< gate mode instead of the suites
  double threshold_pct = 5.0;  ///< --obs-overhead failure threshold
  std::uint64_t repeats = 0;  ///< 0 = suite default (5, quick 2)
  std::string out_dir = ".";
  std::size_t jobs = 0;  ///< sweep-case worker threads; 0 = auto
};

/// Paper §7 defaults: N = 200, ucastl = 0.25, pf = 0.001, K = 4, M = 2.
ExperimentConfig paper_config() {
  ExperimentConfig config;
  config.group_size = 200;
  config.ucast_loss = 0.25;
  config.crash_probability = 0.001;
  config.seed = 20010701;
  return config;
}

double elapsed_s(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Stamps the entry with hardware-counter attribution from the last
/// repeat: instructions and cache misses per sim event. Absent (left 0)
/// when the kernel denies perf_event_open — bench_io emits the columns
/// only when present, so reports from locked-down hosts stay comparable.
void note_perf(BenchEntry& entry, const gridbox::obs::PerfCounters& perf) {
  const gridbox::obs::PerfReading reading = perf.read();
  if (entry.sim_events == 0) return;
  const double events = static_cast<double>(entry.sim_events);
  if (reading.has_instructions) {
    entry.instructions_per_event =
        static_cast<double>(reading.instructions) / events;
  }
  if (reading.has_cache_misses) {
    entry.cache_misses_per_event =
        static_cast<double>(reading.cache_misses) / events;
  }
  if (entry.instructions_per_event > 0.0) {
    std::printf("  %-28s %8.0f insn/event   %6.2f cache-miss/event\n",
                entry.name.c_str(), entry.instructions_per_event,
                entry.cache_misses_per_event);
  }
}

/// Times `body` (which must return (sim_events, network_messages) of the
/// repeat) `repeats` times and appends the median-wall entry. The last
/// repeat runs under hardware perf counters; attribution is per sim event,
/// which is deterministic, so any repeat is as good as the median one.
template <typename Body>
void run_case(BenchReport& report, const std::string& name,
              std::uint64_t repeats, const Body& body) {
  std::vector<double> walls;
  std::uint64_t sim_events = 0;
  std::uint64_t network_messages = 0;
  gridbox::obs::PerfCounters perf;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const bool counted = r + 1 == repeats && perf.available();
    if (counted) perf.start();
    const auto start = std::chrono::steady_clock::now();
    const auto [events, messages] = body();
    walls.push_back(elapsed_s(start));
    if (counted) perf.stop();
    // Deterministic per case: every repeat computes the same totals.
    sim_events = events;
    network_messages = messages;
  }
  std::sort(walls.begin(), walls.end());
  BenchEntry entry;
  entry.name = name;
  entry.wall_s = walls[walls.size() / 2];
  entry.sim_events = sim_events;
  entry.network_messages = network_messages;
  if (entry.wall_s > 0.0) {
    entry.events_per_s = static_cast<double>(sim_events) / entry.wall_s;
    entry.msgs_per_s = static_cast<double>(network_messages) / entry.wall_s;
  }
  entry.peak_rss_mb =
      static_cast<double>(gridbox::obs::peak_rss_bytes()) / (1024.0 * 1024.0);
  std::printf("  %-28s wall %8.4f s   %10.0f events/s   %9.0f msgs/s\n",
              name.c_str(), entry.wall_s, entry.events_per_s,
              entry.msgs_per_s);
  note_perf(entry, perf);
  report.entries.push_back(std::move(entry));
}

/// Lossless saturation config for the big-N scale points: no loss, no
/// crashes, audit on. With every box saturating, phases end by early bump
/// and the audit registry's content dedup collapses the per-node provenance
/// sets, so even 10^5..10^6 members complete in seconds.
ExperimentConfig scale_config(std::size_t n) {
  ExperimentConfig config;
  config.group_size = n;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.audit = true;
  config.seed = 20010701;
  return config;
}

/// Stamps the just-appended entry with peak RSS per member. Peak RSS is
/// process-wide and monotone, so big-N cases must run before anything
/// larger; the column is informational (bench_diff never gates on it).
void note_rss_per_member(BenchReport& report, std::size_t members) {
  BenchEntry& entry = report.entries.back();
  entry.rss_per_member_b =
      entry.peak_rss_mb * 1024.0 * 1024.0 / static_cast<double>(members);
  std::printf("  %-28s peak rss %8.1f MB   %8.0f B/member\n",
              entry.name.c_str(), entry.peak_rss_mb, entry.rss_per_member_b);
}

/// One end-to-end run as a bench body.
auto single_run_body(const ExperimentConfig& config) {
  return [config]() {
    const RunResult result = gridbox::runner::run_experiment(config);
    return std::pair<std::uint64_t, std::uint64_t>(
        result.sim_events, result.measurement.network_messages);
  };
}

BenchReport new_report(const char* suite, const BenchOptions& options,
                       std::uint64_t repeats) {
  BenchReport report;
  report.suite = suite;
  report.git_rev = gridbox::obs::git_revision();
  report.repeats = repeats;
  report.jobs = options.jobs == 0 ? 1 : options.jobs;
  return report;
}

BenchReport run_micro(const BenchOptions& options, std::uint64_t repeats) {
  BenchReport report = new_report("micro_core", options, repeats);
  std::printf("suite micro_core (%llu repeat(s)):\n",
              static_cast<unsigned long long>(repeats));

  ExperimentConfig base = paper_config();
  run_case(report, "hier_n200", repeats, single_run_body(base));

  ExperimentConfig with_metrics = base;
  with_metrics.collect_metrics = true;
  run_case(report, "hier_n200_metrics", repeats, single_run_body(with_metrics));

  ExperimentConfig audited = base;
  audited.audit = true;
  run_case(report, "hier_n200_audit", repeats, single_run_body(audited));

  if (!options.quick) {
    ExperimentConfig big = base;
    big.group_size = 800;
    run_case(report, "hier_n800", repeats, single_run_body(big));

    ExperimentConfig flat = base;
    flat.protocol = ProtocolKind::kFullyDistributed;
    run_case(report, "all_to_all_n200", repeats, single_run_body(flat));

    ExperimentConfig central = base;
    central.protocol = ProtocolKind::kCentralized;
    run_case(report, "centralized_n200", repeats, single_run_body(central));
  }
  return report;
}

BenchReport run_scale(const BenchOptions& options, std::uint64_t repeats) {
  BenchReport report = new_report("fig06_scale", options, repeats);
  std::printf("suite fig06_scale (%llu repeat(s)):\n",
              static_cast<unsigned long long>(repeats));

  const std::vector<double> ns = options.quick
                                     ? std::vector<double>{200, 400}
                                     : std::vector<double>{200, 400, 800, 1600};
  const std::size_t runs_per_point = options.quick ? 2 : 4;
  ExperimentConfig base = paper_config();
  base.jobs = options.jobs;
  run_case(report, "fig06_slice", repeats, [&] {
    const gridbox::runner::SweepResult sweep = gridbox::runner::run_sweep(
        base, "n", ns,
        [](ExperimentConfig& config, double n) {
          config.group_size = static_cast<std::size_t>(n);
        },
        runs_per_point);
    std::uint64_t messages = 0;
    for (const auto& point : sweep.points) {
      messages += static_cast<std::uint64_t>(point.messages.mean *
                                             static_cast<double>(
                                                 runs_per_point));
    }
    return std::pair<std::uint64_t, std::uint64_t>(sweep.total_sim_events,
                                                   messages);
  });

  if (!options.quick) {
    // Struct-of-arrays scale points: one audited lossless run well past the
    // paper's N range. Deterministic like every other case, but minutes
    // long — so always a single repeat, whatever --repeats says.
    run_case(report, "hier_n100k", 1, single_run_body(scale_config(100'000)));
    note_rss_per_member(report, 100'000);
    if (options.huge) {
      run_case(report, "hier_n1m", 1, single_run_body(scale_config(1'000'000)));
      note_rss_per_member(report, 1'000'000);
    }
  }
  return report;
}

BenchReport run_chaos(const BenchOptions& options, std::uint64_t repeats) {
  BenchReport report = new_report("chaos_stress", options, repeats);
  std::printf("suite chaos_stress (%llu repeat(s)):\n",
              static_cast<unsigned long long>(repeats));

  ExperimentConfig base = paper_config();
  base.chaos_spec =
      "loss 0.25\n"
      "burst 10ms..120ms good=0.05 bad=0.8 go-bad=0.1 go-good=0.2\n";
  run_case(report, "chaos_loss_burst", repeats, single_run_body(base));

  ExperimentConfig crashy = paper_config();
  crashy.chaos_spec =
      "crash M3 at=20ms\ncrash M17 at=35ms\ncrash M42 at=50ms\n"
      "crash M99 at=65ms\ncrash M150 at=80ms\n";
  run_case(report, "chaos_crash_batch", repeats, single_run_body(crashy));

  if (!options.quick) {
    ExperimentConfig storm = paper_config();
    storm.group_size = 400;
    storm.chaos_spec =
        "loss 0.35\n"
        "dup p=0.2 extra=1 spread=500us\n"
        "jitter p=0.3 0us..2ms\n";
    run_case(report, "chaos_dup_storm_n400", repeats, single_run_body(storm));
  }
  return report;
}

/// Times one service stream `repeats` times and appends the median-wall
/// entry, stamped with the service metrics (instances/s on the virtual
/// clock and p99 completion — both deterministic per case).
void run_service_case(BenchReport& report, const std::string& name,
                      std::uint64_t repeats,
                      const gridbox::service::ServiceConfig& config) {
  std::vector<double> walls;
  gridbox::service::ServiceResult last;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    last = gridbox::service::run_service_experiment(config);
    walls.push_back(elapsed_s(start));
  }
  std::sort(walls.begin(), walls.end());
  BenchEntry entry;
  entry.name = name;
  entry.wall_s = walls[walls.size() / 2];
  for (const auto& inst : last.instances) {
    entry.network_messages += inst.network.messages_sent;
  }
  if (entry.wall_s > 0.0) {
    entry.msgs_per_s =
        static_cast<double>(entry.network_messages) / entry.wall_s;
  }
  entry.peak_rss_mb =
      static_cast<double>(gridbox::obs::peak_rss_bytes()) / (1024.0 * 1024.0);
  entry.instances_per_s = last.metrics.instances_per_sec;
  entry.p99_completion_ms =
      static_cast<double>(last.metrics.p99_completion.ticks()) / 1000.0;
  std::printf(
      "  %-28s wall %8.4f s   %6.1f inst/s   p99 %7.1f ms   %zu/%zu ok\n",
      name.c_str(), entry.wall_s, entry.instances_per_s,
      entry.p99_completion_ms, last.metrics.completed, last.metrics.launched);
  report.entries.push_back(std::move(entry));
}

BenchReport run_service(const BenchOptions& options, std::uint64_t repeats) {
  BenchReport report = new_report("service", options, repeats);
  std::printf("suite service (%llu repeat(s)):\n",
              static_cast<unsigned long long>(repeats));

  // Paper-adversity service stream: N = 64 cohorts under 25% loss, epochs
  // every 20 ms with an 8-wide window.
  gridbox::service::ServiceConfig base;
  base.experiment = paper_config();
  base.experiment.group_size = 64;
  base.experiment.audit = true;
  base.experiment.crash_probability = 0.0;
  base.instances = options.quick ? 8 : 32;
  base.epoch_interval = gridbox::SimTime::millis(20);
  base.max_in_flight = 8;
  run_service_case(report, "service_n64_stream", repeats, base);

  // The same stream under churn: two joiners enter mid-stream, one chaos
  // crash recovers later.
  gridbox::service::ServiceConfig churn = base;
  churn.experiment.chaos_spec =
      "join M7 at=60ms\n"
      "join M11 at=120ms\n"
      "crash M3 at=40ms\n"
      "recover M3 at=200ms\n";
  run_service_case(report, "service_n64_churn", repeats, churn);

  if (!options.quick) {
    gridbox::service::ServiceConfig wide = base;
    wide.experiment.group_size = 200;
    wide.instances = 16;
    wide.max_in_flight = 4;
    run_service_case(report, "service_n200_stream", repeats, wide);
  }
  return report;
}

/// Times one real-socket run `repeats` times and appends the median-wall
/// entry, stamped with its shard count. "Events" here are what the reactor
/// mesh actually dispatched — timers fired, posted actions run, datagrams
/// delivered — so events/s is the shard-scaling figure of merit for the
/// lock-free dispatch path. The wire is real: totals are representative,
/// not bit-deterministic like the simulator suites.
void run_udp_case(BenchReport& report, const std::string& name,
                  std::uint64_t repeats,
                  const gridbox::runner::UdpRunConfig& config) {
  std::vector<double> walls;
  gridbox::runner::UdpRunResult last;
  gridbox::obs::PerfCounters perf;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const bool counted = r + 1 == repeats && perf.available();
    if (counted) perf.start();
    const auto start = std::chrono::steady_clock::now();
    last = gridbox::runner::run_udp_experiment(config);
    walls.push_back(elapsed_s(start));
    if (counted) perf.stop();
  }
  std::sort(walls.begin(), walls.end());
  BenchEntry entry;
  entry.name = name;
  entry.wall_s = walls[walls.size() / 2];
  entry.sim_events =
      last.timers_fired + last.actions_run + last.network.messages_delivered;
  entry.network_messages = last.network.messages_sent;
  if (entry.wall_s > 0.0) {
    entry.events_per_s =
        static_cast<double>(entry.sim_events) / entry.wall_s;
    entry.msgs_per_s =
        static_cast<double>(entry.network_messages) / entry.wall_s;
  }
  entry.peak_rss_mb =
      static_cast<double>(gridbox::obs::peak_rss_bytes()) / (1024.0 * 1024.0);
  entry.shards = last.shards;
  std::printf(
      "  %-28s wall %8.4f s   %10.0f events/s   %9.0f msgs/s   %zu shard(s)"
      "%s\n",
      name.c_str(), entry.wall_s, entry.events_per_s, entry.msgs_per_s,
      last.shards, last.completed ? "" : "   INCOMPLETE");
  note_perf(entry, perf);
  report.entries.push_back(std::move(entry));
}

BenchReport run_udp(const BenchOptions& options, std::uint64_t repeats) {
  BenchReport report = new_report("udp", options, repeats);
  std::printf("suite udp (%llu repeat(s)):\n",
              static_cast<unsigned long long>(repeats));

  // N = 1000 lossless, audit and invariant checking off: the measured cost
  // is the dispatch path itself (sockets, wheel, lock-free delivery), not
  // the verification machinery. One shard is the baseline the checked-in
  // BENCH_udp.json captures; 2 and 4 shards show the scaling headroom on
  // hosts that have the cores (on a single-core host all three serialize).
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    gridbox::runner::UdpRunConfig config;
    config.experiment.group_size = 1000;
    config.experiment.ucast_loss = 0.0;
    config.experiment.crash_probability = 0.0;
    config.experiment.audit = false;
    config.experiment.check_invariants = false;
    config.experiment.gossip.round_duration = gridbox::SimTime::millis(5);
    config.experiment.seed = 20010701;
    config.port_base = 39000;
    config.shards = shards;
    run_udp_case(report,
                 "udp_n1000_" + std::to_string(shards) + "shard", repeats,
                 config);
  }
  return report;
}

/// --obs-overhead: the CI gate that observability stays cheap. Times the
/// micro workload bare, with metrics + lineage armed, and with live
/// telemetry sampling on (the two gated pairs) and fails when either
/// instrumented time is more than `threshold_pct` percent slower;
/// metrics-only and metrics+lineage+curves are reported alongside for
/// context. Repeats interleave the variants so thermal drift and cache
/// warmth hit all of them equally, and each variant is scored by its
/// *minimum* wall time: scheduler noise only ever adds time, so the min
/// estimates the true cost and keeps a single-digit-percent gate stable on
/// a ~10 ms workload.
int run_obs_overhead(std::uint64_t repeats, double threshold_pct) {
  const ExperimentConfig base = paper_config();
  ExperimentConfig instrumented = base;
  instrumented.collect_metrics = true;

  const auto timed_bare = [&] {
    const auto start = std::chrono::steady_clock::now();
    (void)gridbox::runner::run_experiment(base);
    return elapsed_s(start);
  };
  const auto timed_metrics = [&] {
    const auto start = std::chrono::steady_clock::now();
    (void)gridbox::runner::run_experiment(instrumented);
    return elapsed_s(start);
  };
  const auto timed_lineage = [&] {
    gridbox::obs::LineageTracker::Options lopt;
    lopt.group_size = instrumented.group_size;
    gridbox::obs::LineageTracker lineage(lopt);
    ExperimentConfig config = instrumented;
    config.lineage = &lineage;
    const auto start = std::chrono::steady_clock::now();
    (void)gridbox::runner::run_experiment(config);
    return elapsed_s(start);
  };
  const auto timed_full = [&] {
    gridbox::obs::LineageTracker::Options lopt;
    lopt.group_size = instrumented.group_size;
    gridbox::obs::LineageTracker lineage(lopt);
    gridbox::obs::CurveRecorder::Options copt;
    copt.round_us =
        static_cast<std::uint64_t>(instrumented.round_duration().ticks());
    gridbox::obs::CurveRecorder curves(copt);
    ExperimentConfig config = instrumented;
    config.lineage = &lineage;
    config.curves = &curves;
    const auto start = std::chrono::steady_clock::now();
    (void)gridbox::runner::run_experiment(config);
    return elapsed_s(start);
  };

  // Live telemetry on: the sampler streams JSONL into an in-memory sink at
  // the default cadence, so the measured cost is the hooks plus the
  // sampling, with no filesystem noise in the gate.
  const auto timed_telemetry = [&] {
    ExperimentConfig config = base;
    std::string sink;
    config.telemetry.enabled = true;
    config.telemetry.sink = &sink;
    const auto start = std::chrono::steady_clock::now();
    (void)gridbox::runner::run_experiment(config);
    return elapsed_s(start);
  };

  // One untimed warm-up of each variant.
  (void)timed_bare();
  (void)timed_metrics();
  (void)timed_lineage();
  (void)timed_full();
  (void)timed_telemetry();

  std::vector<double> off_walls;
  std::vector<double> metrics_walls;
  std::vector<double> on_walls;
  std::vector<double> full_walls;
  std::vector<double> telemetry_walls;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    off_walls.push_back(timed_bare());
    metrics_walls.push_back(timed_metrics());
    on_walls.push_back(timed_lineage());
    full_walls.push_back(timed_full());
    telemetry_walls.push_back(timed_telemetry());
  }
  const double off = *std::min_element(off_walls.begin(), off_walls.end());
  const double metrics =
      *std::min_element(metrics_walls.begin(), metrics_walls.end());
  const double on = *std::min_element(on_walls.begin(), on_walls.end());
  const double full = *std::min_element(full_walls.begin(), full_walls.end());
  const double telemetry =
      *std::min_element(telemetry_walls.begin(), telemetry_walls.end());
  const double overhead_pct = off > 0.0 ? (on / off - 1.0) * 100.0 : 0.0;
  const double full_pct = off > 0.0 ? (full / off - 1.0) * 100.0 : 0.0;
  const double telemetry_pct = off > 0.0 ? (telemetry / off - 1.0) * 100.0
                                         : 0.0;
  std::printf(
      "obs-overhead: bare %.4f s, metrics %.4f s, metrics+lineage %.4f s, "
      "overhead %+.2f%% (threshold +%.1f%%); telemetry %.4f s (%+.2f%%, "
      "gated); +curves %.4f s (%+.2f%%, informational)\n",
      off, metrics, on, overhead_pct, threshold_pct, telemetry, telemetry_pct,
      full, full_pct);
  int failures = 0;
  if (overhead_pct > threshold_pct) {
    std::fprintf(stderr,
                 "error: observability overhead %+.2f%% exceeds +%.1f%%\n",
                 overhead_pct, threshold_pct);
    ++failures;
  }
  if (telemetry_pct > threshold_pct) {
    std::fprintf(stderr,
                 "error: telemetry overhead %+.2f%% exceeds +%.1f%%\n",
                 telemetry_pct, threshold_pct);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int usage(int code) {
  std::fputs(
      "gridbox_bench — perf-regression suites emitting BENCH_*.json\n"
      "\n"
      "usage: gridbox_bench [flags]\n"
      "  --suite NAME   micro | scale | chaos | service | udp | all\n"
      "                 (default all; udp binds loopback sockets and only\n"
      "                 runs when named)\n"
      "  --quick        smaller case list and fewer repeats (CI smoke)\n"
      "  --huge         add the 10^6-member scale point (scale suite only)\n"
      "  --repeats R    wall-time repeats per case (default 5; --quick 2)\n"
      "  --out DIR      output directory for BENCH_*.json (default .)\n"
      "  --jobs N       worker threads for sweep cases (default auto)\n"
      "  --obs-overhead gate mode: compare the micro workload bare vs with\n"
      "                 metrics+lineage armed and vs live telemetry on;\n"
      "                 exit 1 when either instrumented min is over the\n"
      "                 threshold\n"
      "  --threshold P  --obs-overhead failure threshold in percent\n"
      "                 (default 5)\n"
      "  --help         this text\n",
      code == 0 ? stdout : stderr);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") return usage(0);
    if (flag == "--quick") {
      options.quick = true;
    } else if (flag == "--huge") {
      options.huge = true;
    } else if (flag == "--obs-overhead") {
      options.obs_overhead = true;
    } else if (flag == "--threshold") {
      const char* value = next();
      if (value == nullptr || std::atof(value) <= 0.0) {
        std::fprintf(stderr, "error: --threshold: need a positive percent\n");
        return usage(1);
      }
      options.threshold_pct = std::atof(value);
    } else if (flag == "--suite") {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --suite: missing value\n");
        return usage(1);
      }
      options.micro = options.scale = options.chaos = options.service = false;
      options.udp = false;
      if (std::strcmp(value, "micro") == 0) {
        options.micro = true;
      } else if (std::strcmp(value, "scale") == 0) {
        options.scale = true;
      } else if (std::strcmp(value, "chaos") == 0) {
        options.chaos = true;
      } else if (std::strcmp(value, "service") == 0) {
        options.service = true;
      } else if (std::strcmp(value, "udp") == 0) {
        options.udp = true;
      } else if (std::strcmp(value, "all") == 0) {
        // `all` stays socket-free: the udp suite binds a 1000-port loopback
        // window, so it runs only when asked for by name.
        options.micro = options.scale = options.chaos = options.service =
            true;
      } else {
        std::fprintf(stderr, "error: --suite: unknown: %s\n", value);
        return usage(1);
      }
    } else if (flag == "--repeats") {
      const char* value = next();
      if (value == nullptr || std::atoll(value) <= 0) {
        std::fprintf(stderr, "error: --repeats: need a positive integer\n");
        return usage(1);
      }
      options.repeats = static_cast<std::uint64_t>(std::atoll(value));
    } else if (flag == "--out") {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --out: missing value\n");
        return usage(1);
      }
      options.out_dir = value;
    } else if (flag == "--jobs") {
      const char* value = next();
      if (value == nullptr || std::atoll(value) <= 0) {
        std::fprintf(stderr, "error: --jobs: need a positive integer\n");
        return usage(1);
      }
      options.jobs = static_cast<std::size_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", flag.c_str());
      return usage(1);
    }
  }

  const std::uint64_t repeats =
      options.repeats != 0 ? options.repeats : (options.quick ? 2 : 5);

  if (options.obs_overhead) {
    // The gate needs a tighter min than the suites: the workload is ~10 ms,
    // so a handful of repeats leaves percent-level noise in the estimate.
    const std::uint64_t gate_repeats =
        options.repeats != 0 ? options.repeats : 15;
    return run_obs_overhead(gate_repeats, options.threshold_pct);
  }

  const auto emit = [&](const BenchReport& report, const char* filename) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    const std::string path = options.out_dir + "/" + filename;
    if (!report.write(path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("[bench] %s\n", path.c_str());
    return true;
  };

  bool ok = true;
  if (options.micro) ok = emit(run_micro(options, repeats), "BENCH_core.json") && ok;
  if (options.scale) ok = emit(run_scale(options, repeats), "BENCH_scale.json") && ok;
  if (options.chaos) ok = emit(run_chaos(options, repeats), "BENCH_chaos.json") && ok;
  if (options.service) {
    ok = emit(run_service(options, repeats), "BENCH_service.json") && ok;
  }
  if (options.udp) ok = emit(run_udp(options, repeats), "BENCH_udp.json") && ok;
  return ok ? 0 : 1;
}
