// gridbox_explain — offline queries over lineage / curve documents.
//
// Answers the questions a failed or puzzling run raises, from artifacts
// alone (no re-run needed):
//   --path M V         the causal chain by which member V's vote reached
//                      member M's final estimate (who told whom, when)
//   --why-missing M V  the first phase at which V's vote fell out of M's
//                      subtree, and who still carried it at that point
//   --curve PHASE      empirical vs analytic infection fractions per round
//   --summary          (default) completeness, finish counts, errors
//
// Inputs are the JSON documents written by gridbox_sim --lineage and
// --curves-out ("gridbox-lineage/1", "gridbox-curves/1").

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace {

using gridbox::obs::JsonValue;

struct LineageNode {
  std::uint32_t member = 0;
  std::string op;  // remote | local | adopted | result | conclude
  std::uint32_t phase = 0;
  std::uint32_t index = 0;
  std::uint32_t votes = 0;
  std::uint64_t t = 0;
  std::int64_t parent = -1;
  std::vector<std::int64_t> merged;
};

struct LineageDoc {
  std::size_t group_size = 0;
  std::uint32_t fanout = 0;
  std::size_t num_phases = 0;
  std::uint64_t completeness_bp = 0;
  std::vector<LineageNode> nodes;
  std::vector<std::int64_t> final_node;            // per member, -1 = none
  std::vector<bool> finished;
  std::vector<bool> crashed;
  std::vector<std::vector<std::uint32_t>> addr;    // per member digits
  std::vector<std::string> errors;

  /// Members in M's gossip group at `phase`: the ones sharing the top
  /// (num_phases - phase) address digits (phase 1 = the grid box, the last
  /// phase = everyone).
  [[nodiscard]] bool same_phase_group(std::uint32_t a, std::uint32_t b,
                                      std::size_t phase) const {
    if (a >= addr.size() || b >= addr.size()) return false;
    if (phase >= num_phases) return true;
    const std::size_t prefix = num_phases - phase;
    for (std::size_t d = 0; d < prefix && d < addr[a].size(); ++d) {
      if (addr[a][d] != addr[b][d]) return false;
    }
    return true;
  }
};

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

[[nodiscard]] LineageDoc parse_lineage(const JsonValue& root);

/// Loads a lineage document. Accepts both the single-run "gridbox-lineage/1"
/// form and the multi-instance "gridbox-lineage-multi/1" container written
/// by service runs (gridbox_sim --instances), which needs --instance ID to
/// pick one instance's forest.
[[nodiscard]] LineageDoc load_lineage(
    const std::string& path, std::optional<std::uint32_t> instance) {
  const JsonValue root = gridbox::obs::json_parse(read_file(path));
  const std::string schema = root.string_or("schema", "");
  if (schema == "gridbox-lineage-multi/1") {
    const JsonValue* instances = root.find("instances");
    std::string available;
    const JsonValue* picked = nullptr;
    if (instances != nullptr && instances->is_array()) {
      for (const JsonValue& entry : instances->array) {
        const auto id =
            static_cast<std::uint32_t>(entry.number_or("id", 0));
        if (!available.empty()) available += " ";
        available += std::to_string(id);
        if (instance.has_value() && id == *instance) {
          picked = entry.find("doc");
        }
      }
    }
    if (!instance.has_value()) {
      std::fprintf(stderr,
                   "error: %s is a multi-instance lineage document — pick one "
                   "with --instance ID (available: %s)\n",
                   path.c_str(),
                   available.empty() ? "<none>" : available.c_str());
      std::exit(1);
    }
    if (picked == nullptr || !picked->is_object()) {
      std::fprintf(stderr,
                   "error: no instance %u in %s (available: %s)\n", *instance,
                   path.c_str(),
                   available.empty() ? "<none>" : available.c_str());
      std::exit(1);
    }
    if (picked->string_or("schema", "") != "gridbox-lineage/1") {
      std::fprintf(stderr,
                   "error: instance %u of %s is not a gridbox-lineage/1 "
                   "document\n",
                   *instance, path.c_str());
      std::exit(1);
    }
    return parse_lineage(*picked);
  }
  if (schema != "gridbox-lineage/1") {
    std::fprintf(stderr, "error: %s is not a gridbox-lineage/1 document\n",
                 path.c_str());
    std::exit(1);
  }
  if (instance.has_value()) {
    std::fprintf(stderr,
                 "error: --instance only applies to gridbox-lineage-multi/1 "
                 "documents (%s is a single-run document)\n",
                 path.c_str());
    std::exit(1);
  }
  return parse_lineage(root);
}

[[nodiscard]] LineageDoc parse_lineage(const JsonValue& root) {
  LineageDoc doc;
  doc.group_size = static_cast<std::size_t>(root.number_or("group_size", 0));
  doc.fanout = static_cast<std::uint32_t>(root.number_or("fanout", 0));
  doc.num_phases = static_cast<std::size_t>(root.number_or("num_phases", 0));
  doc.completeness_bp =
      static_cast<std::uint64_t>(root.number_or("completeness_bp", 0));
  doc.final_node.assign(doc.group_size, -1);
  doc.finished.assign(doc.group_size, false);
  doc.crashed.assign(doc.group_size, false);
  doc.addr.assign(doc.group_size, {});
  if (const JsonValue* members = root.find("members");
      members != nullptr && members->is_array()) {
    for (const JsonValue& m : members->array) {
      const auto id = static_cast<std::size_t>(m.number_or("m", 0));
      if (id >= doc.group_size) continue;
      doc.final_node[id] = static_cast<std::int64_t>(m.number_or("final", -1));
      doc.finished[id] = m.number_or("finished", 0) != 0;
      doc.crashed[id] = m.number_or("crashed", 0) != 0;
      if (const JsonValue* a = m.find("addr");
          a != nullptr && a->is_array()) {
        for (const JsonValue& digit : a->array) {
          doc.addr[id].push_back(static_cast<std::uint32_t>(digit.number));
        }
      }
    }
  }
  if (const JsonValue* nodes = root.find("nodes");
      nodes != nullptr && nodes->is_array()) {
    doc.nodes.reserve(nodes->array.size());
    for (const JsonValue& n : nodes->array) {
      LineageNode node;
      node.member = static_cast<std::uint32_t>(n.number_or("m", 0));
      node.op = n.string_or("op", "?");
      node.phase = static_cast<std::uint32_t>(n.number_or("phase", 0));
      node.index = static_cast<std::uint32_t>(n.number_or("index", 0));
      node.votes = static_cast<std::uint32_t>(n.number_or("votes", 0));
      node.t = static_cast<std::uint64_t>(n.number_or("t", 0));
      node.parent = static_cast<std::int64_t>(n.number_or("parent", -1));
      if (const JsonValue* merged = n.find("merged");
          merged != nullptr && merged->is_array()) {
        for (const JsonValue& id : merged->array) {
          node.merged.push_back(static_cast<std::int64_t>(id.number));
        }
      }
      doc.nodes.push_back(std::move(node));
    }
  }
  if (const JsonValue* errors = root.find("errors");
      errors != nullptr && errors->is_array()) {
    for (const JsonValue& e : errors->array) doc.errors.push_back(e.string);
  }
  return doc;
}

/// Upstream edges of a node: what its knowledge was built from.
[[nodiscard]] std::vector<std::int64_t> inputs_of(const LineageNode& node) {
  if (!node.merged.empty()) return node.merged;
  if (node.parent >= 0) return {node.parent};
  return {};
}

/// The set of origin members whose phase-1 votes feed `id` (memoized).
const std::set<std::uint32_t>& votes_reaching(
    const LineageDoc& doc, std::int64_t id,
    std::vector<std::optional<std::set<std::uint32_t>>>& memo) {
  auto& slot = memo[static_cast<std::size_t>(id)];
  if (slot.has_value()) return *slot;
  slot.emplace();  // settles self-cycles (none expected) to the empty set
  const LineageNode& node = doc.nodes[static_cast<std::size_t>(id)];
  std::set<std::uint32_t> votes;
  if (node.phase == 1 && node.op == "local") {
    votes.insert(node.index);  // the leaf: index is the origin member
  }
  for (const std::int64_t input : inputs_of(node)) {
    if (input < 0 || static_cast<std::size_t>(input) >= doc.nodes.size()) {
      continue;
    }
    const auto& sub = votes_reaching(doc, input, memo);
    votes.insert(sub.begin(), sub.end());
  }
  slot = std::move(votes);
  return *slot;
}

void print_node_line(const LineageDoc& doc, std::int64_t id) {
  const LineageNode& n = doc.nodes[static_cast<std::size_t>(id)];
  if (n.op == "local" && n.phase == 1) {
    std::printf("  t=%-10llu M%u seeds its own vote (phase 1)\n",
                static_cast<unsigned long long>(n.t), n.member);
  } else if (n.op == "local") {
    std::printf(
        "  t=%-10llu M%u carries its phase-%u aggregate into slot %u of "
        "phase %u (%u votes)\n",
        static_cast<unsigned long long>(n.t), n.member, n.phase - 1, n.index,
        n.phase, n.votes);
  } else if (n.op == "remote") {
    if (n.phase == 1) {
      std::printf("  t=%-10llu M%u learns M%u's vote (gossip from M%u)\n",
                  static_cast<unsigned long long>(n.t), n.member, n.index,
                  n.index);
    } else {
      std::printf(
          "  t=%-10llu M%u learns slot %u of phase %u from M%u (%u votes)\n",
          static_cast<unsigned long long>(n.t), n.member, n.index, n.phase,
          static_cast<std::uint32_t>(
              n.parent >= 0
                  ? doc.nodes[static_cast<std::size_t>(n.parent)].member
                  : 0),
          n.votes);
    }
  } else if (n.op == "adopted") {
    std::printf(
        "  t=%-10llu M%u adopts an enclosing phase-%u aggregate (%u votes)\n",
        static_cast<unsigned long long>(n.t), n.member, n.phase, n.votes);
  } else if (n.op == "result") {
    std::printf("  t=%-10llu M%u acquires the final result (%u votes)\n",
                static_cast<unsigned long long>(n.t), n.member, n.votes);
  } else if (n.op == "conclude") {
    std::printf(
        "  t=%-10llu M%u concludes phase %u merging %zu cells (%u votes)\n",
        static_cast<unsigned long long>(n.t), n.member, n.phase,
        n.merged.size(), n.votes);
  }
}

/// DFS from `id` down to V's phase-1 seed; fills `path` leaf-last.
bool find_path(const LineageDoc& doc, std::int64_t id, std::uint32_t v,
               std::vector<std::int64_t>& path) {
  if (id < 0 || static_cast<std::size_t>(id) >= doc.nodes.size()) return false;
  const LineageNode& node = doc.nodes[static_cast<std::size_t>(id)];
  path.push_back(id);
  if (node.phase == 1 && node.op == "local" && node.index == v) return true;
  for (const std::int64_t input : inputs_of(node)) {
    if (find_path(doc, input, v, path)) return true;
  }
  path.pop_back();
  return false;
}

int cmd_path(const LineageDoc& doc, std::uint32_t m, std::uint32_t v) {
  if (m >= doc.group_size || v >= doc.group_size) {
    std::fprintf(stderr, "error: member out of range (group size %zu)\n",
                 doc.group_size);
    return 1;
  }
  const std::int64_t final_node = doc.final_node[m];
  if (final_node < 0) {
    std::printf("M%u never finished — it has no final estimate to explain\n",
                m);
    return 1;
  }
  std::vector<std::int64_t> path;
  if (!find_path(doc, final_node, v, path)) {
    std::printf(
        "M%u's vote is NOT part of M%u's final estimate (try --why-missing "
        "%u %u)\n",
        v, m, m, v);
    return 1;
  }
  std::printf("how M%u's vote reached M%u (%zu hops):\n", v, m, path.size());
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    print_node_line(doc, *it);
  }
  return 0;
}

int cmd_why_missing(const LineageDoc& doc, std::uint32_t m, std::uint32_t v) {
  if (m >= doc.group_size || v >= doc.group_size) {
    std::fprintf(stderr, "error: member out of range (group size %zu)\n",
                 doc.group_size);
    return 1;
  }
  std::vector<std::optional<std::set<std::uint32_t>>> memo(doc.nodes.size());
  const std::int64_t final_node = doc.final_node[m];
  if (final_node >= 0 &&
      votes_reaching(doc, final_node, memo).count(v) != 0) {
    std::printf("M%u's vote IS part of M%u's final estimate (see --path %u "
                "%u)\n",
                v, m, m, v);
    return 0;
  }
  if (final_node < 0) {
    std::printf("M%u never finished%s\n", m,
                doc.crashed[m] ? " (it crashed)" : "");
  }

  // Does V's vote exist at all?
  bool seeded = false;
  for (std::size_t i = 0; i < doc.nodes.size(); ++i) {
    const LineageNode& n = doc.nodes[i];
    if (n.phase == 1 && n.op == "local" && n.member == v && n.index == v) {
      seeded = true;
      break;
    }
  }
  if (!seeded) {
    std::printf("M%u never seeded a vote%s\n", v,
                doc.crashed[v] ? " — it crashed before starting" : "");
    return 0;
  }

  // Carriers: members whose phase-p aggregate (conclusion or adoption)
  // contains V's vote. M can only inherit the vote at phase p+1 from a
  // carrier inside its phase-(p+1) gossip group, so the first level where
  // that intersection is empty is where the vote left M's subtree. The loop
  // runs over the phases the protocol actually executed (single-phase
  // baselines carry a hierarchy in the doc but never gossip through it).
  std::size_t phases = 1;
  for (const LineageNode& n : doc.nodes) {
    if ((n.op == "conclude" || n.op == "adopted") && n.phase > phases) {
      phases = n.phase;
    }
  }
  for (std::size_t p = 1; p <= phases; ++p) {
    std::set<std::uint32_t> carriers;
    for (std::size_t i = 0; i < doc.nodes.size(); ++i) {
      const LineageNode& n = doc.nodes[i];
      if (n.phase != p || (n.op != "conclude" && n.op != "adopted")) continue;
      if (votes_reaching(doc, static_cast<std::int64_t>(i), memo).count(v) !=
          0) {
        carriers.insert(n.member);
      }
    }
    if (carriers.empty()) {
      std::printf(
          "phase %zu: NOBODY concluded an aggregate containing M%u's vote — "
          "the vote died here (lost to message loss or a crash before the "
          "phase ended)\n",
          p, v);
      return 0;
    }
    const std::size_t next = p + 1;
    bool reaches_m = false;
    for (const std::uint32_t carrier : carriers) {
      if (next > phases || doc.same_phase_group(carrier, m, next)) {
        reaches_m = true;
        break;
      }
    }
    std::printf("phase %zu: %zu member(s) carry M%u's vote:", p,
                carriers.size(), v);
    std::size_t shown = 0;
    for (const std::uint32_t carrier : carriers) {
      if (shown++ == 8) {
        std::printf(" ...");
        break;
      }
      std::printf(" M%u", carrier);
    }
    std::printf("\n");
    if (!reaches_m && next <= phases) {
      std::printf(
          "  -> none of them is in M%u's phase-%zu gossip group: the vote "
          "could never reach M%u after this point\n",
          m, next, m);
      return 0;
    }
  }
  std::printf(
      "carriers existed in M%u's group at every level; M%u simply failed to "
      "hear the final aggregate (message loss in the last phase)\n",
      m, m);
  return 0;
}

int cmd_summary(const LineageDoc& doc) {
  std::size_t finished = 0;
  std::size_t crashed = 0;
  for (std::size_t i = 0; i < doc.group_size; ++i) {
    if (doc.finished[i]) ++finished;
    if (doc.crashed[i]) ++crashed;
  }
  std::printf("group_size       %zu\n", doc.group_size);
  if (doc.num_phases > 0) {
    std::printf("hierarchy        K=%u, %zu phases\n", doc.fanout,
                doc.num_phases);
  }
  std::printf("finished         %zu\n", finished);
  std::printf("crashed          %zu\n", crashed);
  std::printf("completeness_bp  %llu\n",
              static_cast<unsigned long long>(doc.completeness_bp));
  std::printf("lineage nodes    %zu\n", doc.nodes.size());
  std::printf("errors           %zu\n", doc.errors.size());
  for (const std::string& e : doc.errors) {
    std::printf("  %s\n", e.c_str());
  }
  return doc.errors.empty() ? 0 : 2;
}

int cmd_curve(const std::string& curves_path, std::uint64_t phase) {
  const JsonValue root = gridbox::obs::json_parse(read_file(curves_path));
  if (root.string_or("schema", "") != "gridbox-curves/1") {
    std::fprintf(stderr, "error: %s is not a gridbox-curves/1 document\n",
                 curves_path.c_str());
    return 1;
  }
  const JsonValue* phases = root.find("phases");
  const JsonValue* row = nullptr;
  if (phases != nullptr && phases->is_array()) {
    for (const JsonValue& p : phases->array) {
      if (static_cast<std::uint64_t>(p.number_or("phase", 0)) == phase) {
        row = &p;
        break;
      }
    }
  }
  if (row == nullptr) {
    std::fprintf(stderr, "error: no phase %llu in %s\n",
                 static_cast<unsigned long long>(phase), curves_path.c_str());
    return 1;
  }
  std::printf("phase %llu epidemic (denominator %llu pairs)\n",
              static_cast<unsigned long long>(phase),
              static_cast<unsigned long long>(row->number_or("denominator",
                                                             0)));
  std::printf("%8s %12s %14s %12s\n", "round", "cum gains", "empirical bp",
              "model bp");
  // Index the model rows by round, then walk the union of rounds.
  std::map<std::uint64_t, std::uint64_t> model;
  if (const JsonValue* mrows = row->find("model");
      mrows != nullptr && mrows->is_array()) {
    for (const JsonValue& mr : mrows->array) {
      model[static_cast<std::uint64_t>(mr.number_or("r", 0))] =
          static_cast<std::uint64_t>(mr.number_or("frac_bp", 0));
    }
  }
  if (const JsonValue* samples = row->find("samples");
      samples != nullptr && samples->is_array()) {
    for (const JsonValue& s : samples->array) {
      const auto r = static_cast<std::uint64_t>(s.number_or("r", 0));
      const auto it = model.find(r);
      char model_text[24] = "-";
      if (it != model.end()) {
        std::snprintf(model_text, sizeof(model_text), "%llu",
                      static_cast<unsigned long long>(it->second));
      }
      std::printf("%8llu %12llu %14llu %12s\n",
                  static_cast<unsigned long long>(r),
                  static_cast<unsigned long long>(s.number_or("count", 0)),
                  static_cast<unsigned long long>(s.number_or("frac_bp", 0)),
                  model_text);
    }
  }
  if (const JsonValue* asym = row->find("asymptote_bp"); asym != nullptr) {
    std::printf("analytic asymptote: %llu bp\n",
                static_cast<unsigned long long>(asym->number));
  }
  return 0;
}

void usage() {
  std::fputs(
      R"(gridbox_explain — query lineage / curve artifacts of a gridbox_sim run

usage: gridbox_explain --lineage FILE [--instance ID] [--curves FILE] [command]
       gridbox_explain --curves FILE --curve PHASE

  --instance ID        select one instance of a gridbox-lineage-multi/1
                       document (service runs: gridbox_sim --instances)

commands (default: --summary)
  --summary            completeness, finish/crash counts, accounting errors
  --path M V           causal chain by which member V's vote reached member
                       M's final estimate
  --why-missing M V    first phase at which V's vote fell out of M's subtree
                       and who still carried it
  --curve PHASE        empirical vs analytic infection fractions per round
)",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string lineage_path;
  std::string curves_path;
  std::optional<std::uint32_t> instance;
  enum class Cmd : std::uint8_t { kSummary, kPath, kWhyMissing, kCurve };
  Cmd cmd = Cmd::kSummary;
  std::uint32_t arg_m = 0;
  std::uint32_t arg_v = 0;
  std::uint64_t arg_phase = 0;

  const auto need = [&](int i, int extra) {
    if (i + extra >= argc) {
      usage();
      std::exit(1);
    }
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lineage") == 0) {
      need(i, 1);
      lineage_path = argv[++i];
    } else if (std::strcmp(argv[i], "--curves") == 0) {
      need(i, 1);
      curves_path = argv[++i];
    } else if (std::strcmp(argv[i], "--instance") == 0) {
      need(i, 1);
      instance = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      cmd = Cmd::kSummary;
    } else if (std::strcmp(argv[i], "--path") == 0) {
      need(i, 2);
      cmd = Cmd::kPath;
      arg_m = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      arg_v = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--why-missing") == 0) {
      need(i, 2);
      cmd = Cmd::kWhyMissing;
      arg_m = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      arg_v = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--curve") == 0) {
      need(i, 1);
      cmd = Cmd::kCurve;
      arg_phase = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage();
      return 1;
    }
  }

  if (cmd == Cmd::kCurve) {
    if (curves_path.empty()) {
      std::fprintf(stderr, "error: --curve needs --curves FILE\n");
      return 1;
    }
    return cmd_curve(curves_path, arg_phase);
  }
  if (lineage_path.empty()) {
    usage();
    return 1;
  }
  const LineageDoc doc = load_lineage(lineage_path, instance);
  switch (cmd) {
    case Cmd::kPath:
      return cmd_path(doc, arg_m, arg_v);
    case Cmd::kWhyMissing:
      return cmd_why_missing(doc, arg_m, arg_v);
    default:
      return cmd_summary(doc);
  }
}
