// gridbox_top: live terminal view of a running gridbox service.
//
// Tails a gridbox-telemetry/1 source — either the JSONL file a run writes
// (--file, last complete record) or the one-shot UDP stats socket a UDP
// runtime serves (--udp host:port, one probe datagram per refresh) — and
// renders a refreshing per-shard / per-instance health table: timer-fire
// lateness percentiles, poll wake causes, drain and dispatch batch sizes,
// post-queue high-water, and the service section's window occupancy and
// epoch-latency percentiles. Percentiles come from the log2 histograms, so
// a value reads "<= 2^b us": coarse, allocation-free, and honest about it.
//
//   gridbox_top --file t.jsonl             # refresh from a file every 1s
//   gridbox_top --udp 127.0.0.1:47000      # refresh from a live socket
//   gridbox_top --file t.jsonl --once      # render once and exit (CI smoke)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"

namespace {

using gridbox::obs::JsonValue;

struct Options {
  std::string file;
  std::string udp;  ///< host:port
  int interval_ms = 1000;
  bool once = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: gridbox_top (--file PATH | --udp HOST:PORT) [--interval-ms N] "
      "[--once]\n"
      "  --file PATH       tail a gridbox-telemetry/1 JSONL file\n"
      "  --udp HOST:PORT   probe a live run's telemetry stats socket\n"
      "  --interval-ms N   refresh cadence (default 1000)\n"
      "  --once            render the latest record once and exit\n");
}

/// Last complete line of the JSONL file (the newest sample), or "".
std::string read_last_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  return last;
}

/// One probe datagram, one record back; "" on timeout or error.
std::string probe_udp(const std::string& target, int timeout_ms) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) return "";
  std::string host = target.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return "";

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "";
  }
  const char probe = '?';
  std::string record;
  if (::sendto(fd, &probe, 1, 0, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 1) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (::poll(&p, 1, timeout_ms) > 0) {
      std::vector<char> buffer(1 << 16);
      const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
      if (n > 0) record.assign(buffer.data(), static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  while (!record.empty() &&
         (record.back() == '\n' || record.back() == '\r')) {
    record.pop_back();
  }
  return record;
}

std::uint64_t uint_of(const JsonValue& v, const char* name) {
  return static_cast<std::uint64_t>(v.number_or(name, 0.0));
}

/// Upper bound (µs or count) of the histogram bucket holding quantile `q`.
/// Bucket 0 is exact zero; bucket b covers values < 2^b.
std::uint64_t hist_quantile(const JsonValue& hist, double q) {
  if (!hist.is_array()) return 0;
  std::uint64_t total = 0;
  for (const JsonValue& b : hist.array) {
    total += static_cast<std::uint64_t>(b.number);
  }
  if (total == 0) return 0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(total)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < hist.array.size(); ++b) {
    cum += static_cast<std::uint64_t>(hist.array[b].number);
    if (cum >= target) {
      return b == 0 ? 0 : (std::uint64_t{1} << b);
    }
  }
  return std::uint64_t{1} << (hist.array.size() - 1);
}

void render_lane(const char* label, const JsonValue& lane) {
  const JsonValue* lateness = lane.find("lateness_us");
  const JsonValue* drain = lane.find("drain_per_wake");
  const JsonValue* dispatch = lane.find("dispatch_per_tick");
  std::printf(
      "%5s %9llu %8llu %9llu %8llu %8llu %6llu %9llu  <=%-7llu <=%-7llu "
      "<=%-5llu %5llu\n",
      label,
      static_cast<unsigned long long>(uint_of(lane, "timers_fired")),
      static_cast<unsigned long long>(uint_of(lane, "actions_run")),
      static_cast<unsigned long long>(uint_of(lane, "frames")),
      static_cast<unsigned long long>(uint_of(lane, "wakes_io")),
      static_cast<unsigned long long>(uint_of(lane, "wakes_timeout")),
      static_cast<unsigned long long>(uint_of(lane, "eintr")),
      static_cast<unsigned long long>(uint_of(lane, "polls")),
      static_cast<unsigned long long>(
          lateness != nullptr ? hist_quantile(*lateness, 0.5) : 0),
      static_cast<unsigned long long>(
          lateness != nullptr ? hist_quantile(*lateness, 0.99) : 0),
      static_cast<unsigned long long>(
          drain != nullptr ? hist_quantile(*drain, 0.99) : 0),
      static_cast<unsigned long long>(uint_of(lane, "queue_depth_hw")));
  (void)dispatch;
}

bool render(const std::string& record, bool clear) {
  JsonValue doc;
  try {
    doc = gridbox::obs::json_parse(record);
  } catch (...) {
    return false;
  }
  if (doc.string_or("schema", "") != "gridbox-telemetry/1") return false;

  if (clear) std::printf("\x1b[H\x1b[2J");
  const double t_s = doc.number_or("t_us", 0.0) / 1e6;
  std::printf("gridbox-telemetry/1   seq %llu   t %.3f s   lanes %llu\n\n",
              static_cast<unsigned long long>(uint_of(doc, "seq")), t_s,
              static_cast<unsigned long long>(uint_of(doc, "lanes")));
  std::printf(
      "shard    timers  actions    frames  wake_io  wake_to  eintr      "
      "polls  late_p50  late_p99 drn_p99  q_hw\n");
  const JsonValue* shards = doc.find("shards");
  if (shards != nullptr && shards->is_array()) {
    char label[24];
    for (std::size_t s = 0; s < shards->array.size(); ++s) {
      std::snprintf(label, sizeof(label), "%zu", s);
      render_lane(label, shards->array[s]);
    }
  }
  const JsonValue* total = doc.find("total");
  if (total != nullptr) render_lane("all", *total);

  const JsonValue* service = doc.find("service");
  if (service != nullptr && service->is_object()) {
    const JsonValue* epoch = service->find("epoch_latency_us");
    std::printf(
        "\nservice  launched %llu  completed %llu  failed %llu  deferred "
        "%llu\n"
        "         in-flight %llu (hw %llu)  defer-queue %llu (hw %llu)  "
        "epoch p50 <=%lluus  p99 <=%lluus\n",
        static_cast<unsigned long long>(uint_of(*service, "launched")),
        static_cast<unsigned long long>(uint_of(*service, "completed")),
        static_cast<unsigned long long>(uint_of(*service, "failed")),
        static_cast<unsigned long long>(uint_of(*service, "deferred")),
        static_cast<unsigned long long>(uint_of(*service, "in_flight")),
        static_cast<unsigned long long>(uint_of(*service, "in_flight_hw")),
        static_cast<unsigned long long>(uint_of(*service, "deferred_queue")),
        static_cast<unsigned long long>(
            uint_of(*service, "deferred_queue_hw")),
        static_cast<unsigned long long>(
            epoch != nullptr ? hist_quantile(*epoch, 0.5) : 0),
        static_cast<unsigned long long>(
            epoch != nullptr ? hist_quantile(*epoch, 0.99) : 0));
  }
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--file" && has_next) {
      options.file = argv[++i];
    } else if (arg == "--udp" && has_next) {
      options.udp = argv[++i];
    } else if (arg == "--interval-ms" && has_next) {
      options.interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "gridbox_top: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 1;
    }
  }
  if (options.file.empty() == options.udp.empty()) {
    usage();
    return 1;
  }
  if (options.interval_ms <= 0) options.interval_ms = 1000;

  bool rendered_any = false;
  for (;;) {
    const std::string record =
        !options.file.empty() ? read_last_line(options.file)
                              : probe_udp(options.udp, options.interval_ms);
    if (!record.empty() && render(record, /*clear=*/!options.once)) {
      rendered_any = true;
    } else if (options.once) {
      std::fprintf(stderr,
                   "gridbox_top: no gridbox-telemetry/1 record at %s\n",
                   (!options.file.empty() ? options.file : options.udp)
                       .c_str());
      return 1;
    }
    if (options.once) return rendered_any ? 0 : 1;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
}
