// bench_diff: compare two BENCH_*.json files from gridbox_bench.
//
// Exits 0 when no case regressed past the threshold, 1 on regression, and
// 2 on unreadable/mismatched inputs. CI runs this against a checked-in
// baseline with --threshold 0.35 and fails the job on regression; the wide
// threshold absorbs shared-runner noise while still catching real
// message-path slowdowns.
//
// usage: bench_diff OLD.json NEW.json [--threshold FRAC]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "src/obs/bench_io.h"

int main(int argc, char** argv) {
  double threshold = 0.2;
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threshold: missing value\n");
        return 2;
      }
      threshold = std::atof(argv[++i]);
      if (threshold < 0.0) {
        std::fprintf(stderr, "error: --threshold: must be non-negative\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::puts("usage: bench_diff OLD.json NEW.json [--threshold FRAC]");
      return 0;
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      std::fprintf(stderr, "error: unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (old_path == nullptr || new_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold FRAC]\n");
    return 2;
  }

  try {
    const auto old_report = gridbox::obs::BenchReport::load(old_path);
    const auto new_report = gridbox::obs::BenchReport::load(new_path);
    if (old_report.suite != new_report.suite) {
      std::fprintf(stderr, "error: suite mismatch: %s vs %s\n",
                   old_report.suite.c_str(), new_report.suite.c_str());
      return 2;
    }
    const auto diff =
        gridbox::obs::bench_diff(old_report, new_report, threshold);
    std::printf("suite %s: %s (%s -> %s)\n", new_report.suite.c_str(),
                diff.ok() ? "ok" : "REGRESSED", old_report.git_rev.c_str(),
                new_report.git_rev.c_str());
    std::fputs(diff.render().c_str(), stdout);
    return diff.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
