// gridbox_node: run an aggregation group over real UDP sockets on loopback.
//
// Every member of the group runs as a protocol node inside this process,
// sharded over a few reactor threads, each member with its own nonblocking
// UDP socket bound to port_base + member id — the deployable counterpart of
// gridbox_sim (docs/udp_runtime.md). With --differential the same config
// also runs in the simulator and the two results are cross-checked; exit
// status 2 signals divergence, matching `gridbox_sim --differential`.
//
// Exit codes: 0 success / agreement, 1 usage or run error, 2 divergence.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/net/chaos.h"
#include "src/obs/build_info.h"
#include "src/obs/manifest.h"
#include "src/runner/config.h"
#include "src/runner/udp_differential.h"
#include "src/runner/udp_runtime.h"
#include "src/service/udp_service.h"

namespace {

using namespace gridbox;

void print_help() {
  std::cout << R"(gridbox_node — aggregation over real UDP sockets on loopback

usage: gridbox_node [options]

group
  --n N                  group size (default 200)
  --protocol NAME        hier-gossip (default) | all-to-all | centralized |
                         leader | committee
  --seed S               root seed (default 1)
  --aggregate NAME       average (default) | sum | min | max | count | range

network
  --port-base P          member m listens on 127.0.0.1:(P + m) (default 38000)
  --threads T            reactor shard threads (default auto)
  --loss P               iid unicast loss, applied via the userspace shim
  --chaos FILE           chaos spec file (docs/chaos.md grammar)
  --chaos-spec TEXT      inline chaos spec text
  --round-us U           gossip round duration in µs (default 10000)
  --deadline-factor F    wall-clock deadline multiplier (default 20)

service (docs/service.md)
  --instances I          run I protocol instances as a streaming service
                         over one socket set (enables service mode)
  --epoch-interval-us U  launch cadence in µs (default 50000)
  --in-flight W          bounded in-flight window (default 8)
                         chaos specs may add join/recover churn directives

telemetry (docs/observability.md)
  --telemetry-out PATH   stream gridbox-telemetry/1 JSONL health samples
                         to PATH (enables live telemetry)
  --telemetry-interval-us U
                         sampling cadence in µs (default 100000)
  --telemetry-port P     also serve the latest record one-shot from a UDP
                         stats socket on 127.0.0.1:P (gridbox_top --udp)

harness
  --differential         also run the simulator; exit 2 unless both runs
                         are audit-clean, reconstruct, and agree on ground
                         truth (see docs/udp_runtime.md). In service mode
                         the check applies per instance.
  --report-dir DIR       write summary.txt, chaos.spec, and manifest.json
                         (CI failure artifacts)
  --help
)";
}

struct Options {
  runner::UdpRunConfig udp;
  bool differential = false;
  std::string report_dir;
  /// Service mode: > 0 streams this many instances (docs/service.md).
  std::size_t instances = 0;
  SimTime epoch_interval = SimTime::millis(50);
  std::size_t in_flight = 8;
};

[[nodiscard]] bool parse_args(int argc, char** argv, Options& options,
                              bool& help) {
  runner::ExperimentConfig& config = options.udp.experiment;
  config.crash_probability = 0.0;  // real runs default crash-free
  config.audit = true;
  auto need_value = [&](int& i, const char* flag, std::string& out) {
    if (i + 1 >= argc) {
      std::cerr << flag << ": missing value\n";
      return false;
    }
    out = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    std::string value;
    try {
      if (flag == "--help") {
        help = true;
        return true;
      } else if (flag == "--n") {
        if (!need_value(i, "--n", value)) return false;
        config.group_size = std::stoul(value);
      } else if (flag == "--protocol") {
        if (!need_value(i, "--protocol", value)) return false;
        static const std::map<std::string, runner::ProtocolKind> kNames = {
            {"hier-gossip", runner::ProtocolKind::kHierGossip},
            {"all-to-all", runner::ProtocolKind::kFullyDistributed},
            {"centralized", runner::ProtocolKind::kCentralized},
            {"leader", runner::ProtocolKind::kLeaderElection},
            {"committee", runner::ProtocolKind::kCommittee},
        };
        const auto it = kNames.find(value);
        if (it == kNames.end()) {
          std::cerr << "--protocol: unknown: " << value << "\n";
          return false;
        }
        config.protocol = it->second;
      } else if (flag == "--seed") {
        if (!need_value(i, "--seed", value)) return false;
        config.seed = std::stoull(value);
      } else if (flag == "--aggregate") {
        if (!need_value(i, "--aggregate", value)) return false;
        static const std::map<std::string, agg::AggregateKind> kNames = {
            {"average", agg::AggregateKind::kAverage},
            {"sum", agg::AggregateKind::kSum},
            {"min", agg::AggregateKind::kMin},
            {"max", agg::AggregateKind::kMax},
            {"count", agg::AggregateKind::kCount},
            {"range", agg::AggregateKind::kRange},
        };
        const auto it = kNames.find(value);
        if (it == kNames.end()) {
          std::cerr << "--aggregate: unknown: " << value << "\n";
          return false;
        }
        config.aggregate = it->second;
      } else if (flag == "--port-base") {
        if (!need_value(i, "--port-base", value)) return false;
        options.udp.port_base = static_cast<std::uint16_t>(std::stoul(value));
      } else if (flag == "--threads") {
        if (!need_value(i, "--threads", value)) return false;
        options.udp.shards = std::stoul(value);
      } else if (flag == "--loss") {
        if (!need_value(i, "--loss", value)) return false;
        config.ucast_loss = std::stod(value);
      } else if (flag == "--chaos") {
        if (!need_value(i, "--chaos", value)) return false;
        std::ifstream in(value);
        if (!in) {
          std::cerr << "--chaos: cannot read " << value << "\n";
          return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        config.chaos_spec = text.str();
      } else if (flag == "--chaos-spec") {
        if (!need_value(i, "--chaos-spec", value)) return false;
        config.chaos_spec = value;
      } else if (flag == "--round-us") {
        if (!need_value(i, "--round-us", value)) return false;
        config.gossip.round_duration =
            SimTime::micros(static_cast<SimTime::underlying>(
                std::stoll(value)));
      } else if (flag == "--deadline-factor") {
        if (!need_value(i, "--deadline-factor", value)) return false;
        options.udp.deadline_factor = std::stod(value);
      } else if (flag == "--instances") {
        if (!need_value(i, "--instances", value)) return false;
        options.instances = std::stoul(value);
      } else if (flag == "--epoch-interval-us") {
        if (!need_value(i, "--epoch-interval-us", value)) return false;
        options.epoch_interval = SimTime::micros(
            static_cast<SimTime::underlying>(std::stoll(value)));
      } else if (flag == "--in-flight") {
        if (!need_value(i, "--in-flight", value)) return false;
        options.in_flight = std::stoul(value);
      } else if (flag == "--telemetry-out") {
        if (!need_value(i, "--telemetry-out", value)) return false;
        config.telemetry.out_path = value;
        config.telemetry.enabled = true;
      } else if (flag == "--telemetry-interval-us") {
        if (!need_value(i, "--telemetry-interval-us", value)) return false;
        config.telemetry.interval = SimTime::micros(
            static_cast<SimTime::underlying>(std::stoll(value)));
        config.telemetry.enabled = true;
      } else if (flag == "--telemetry-port") {
        if (!need_value(i, "--telemetry-port", value)) return false;
        config.telemetry.udp_port =
            static_cast<std::uint16_t>(std::stoul(value));
        config.telemetry.enabled = true;
      } else if (flag == "--differential") {
        options.differential = true;
      } else if (flag == "--report-dir") {
        if (!need_value(i, "--report-dir", value)) return false;
        options.report_dir = value;
      } else {
        std::cerr << "unknown flag: " << flag << " (see --help)\n";
        return false;
      }
    } catch (const std::exception&) {
      std::cerr << flag << ": bad value: " << value << "\n";
      return false;
    }
  }
  // Validate the chaos spec up front so a typo fails fast with a line
  // number instead of mid-run.
  (void)net::ChaosSpec::parse(config.chaos_spec);
  return true;
}

void write_report(const Options& options, const std::string& summary) {
  if (options.report_dir.empty()) return;
  const std::string dir = options.report_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort, like write()
  std::ofstream(dir + "/summary.txt") << summary;
  std::ofstream(dir + "/chaos.spec")
      << net::ChaosSpec::parse(options.udp.experiment.chaos_spec).to_text();
  obs::RunManifest manifest;
  manifest.tool = "gridbox_node";
  manifest.git_rev = obs::git_revision();
  manifest.config_text =
      runner::config_canonical_text(options.udp.experiment);
  manifest.chaos_spec = options.udp.experiment.chaos_spec;
  manifest.base_seed = options.udp.experiment.seed;
  manifest.jobs = options.udp.shards;
  (void)manifest.write(dir + "/manifest.json");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  bool help = false;
  try {
    if (!parse_args(argc, argv, options, help)) return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (help) {
    print_help();
    return 0;
  }

  try {
    if (options.instances > 0) {
      service::UdpServiceConfig sc;
      sc.service.experiment = options.udp.experiment;
      sc.service.instances = options.instances;
      sc.service.epoch_interval = options.epoch_interval;
      sc.service.max_in_flight = options.in_flight;
      sc.service.deadline_factor = options.udp.deadline_factor;
      sc.service.min_deadline = options.udp.min_deadline;
      sc.port_base = options.udp.port_base;
      sc.shards = options.udp.shards;
      if (options.differential) {
        const service::ServiceDifferentialReport report =
            service::run_service_differential(sc);
        const std::string summary = report.describe();
        std::cout << summary;
        write_report(options, summary);
        return report.ok() ? 0 : 2;
      }
      const service::UdpServiceResult result = service::run_udp_service(sc);
      const service::ServiceMetrics& m = result.result.metrics;
      bool clean = result.result.completed;
      for (const service::InstanceResult& inst : result.result.instances) {
        clean = clean && inst.completed &&
                inst.measurement.audit_violations == 0 &&
                inst.measurement.reconstruction_failures == 0 &&
                inst.invariant_violations == 0;
      }
      std::ostringstream out;
      out << "service n=" << sc.service.experiment.group_size
          << " shards=" << result.shards << " instances=" << m.completed
          << "/" << m.launched << " failed=" << m.failed
          << " deferred=" << m.deferred << " inst_per_s=" << m.instances_per_sec
          << " p50_ms=" << m.p50_completion.ticks() / 1000
          << " p99_ms=" << m.p99_completion.ticks() / 1000
          << " demux_delivered=" << m.demux.delivered
          << " demux_malformed=" << m.demux.malformed_envelope
          << " demux_unknown=" << m.demux.unknown_instance
          << " demux_retired=" << m.demux.retired_instance
          << " closed_sends=" << m.demux.closed_sends
          << " elapsed_ms=" << result.result.elapsed.ticks() / 1000 << "\n";
      const std::string summary = out.str();
      std::cout << summary;
      write_report(options, summary);
      return clean ? 0 : 1;
    }
    if (options.differential) {
      const runner::UdpDifferentialReport report =
          runner::run_udp_differential(options.udp);
      const std::string summary = report.describe();
      std::cout << summary;
      write_report(options, summary);
      return report.ok() ? 0 : 2;
    }
    const runner::UdpRunResult result =
        runner::run_udp_experiment(options.udp);
    std::ostringstream out;
    const protocols::RunMeasurement& m = result.measurement;
    out << "n=" << m.group_size << " shards=" << result.shards
        << " completed=" << (result.completed ? "yes" : "no")
        << " finished=" << m.finished_nodes << "/" << m.survivors
        << " completeness=" << m.mean_completeness
        << " audit_violations=" << m.audit_violations
        << " reconstruction_failures=" << m.reconstruction_failures
        << " invariant_violations=" << result.invariant_violations
        << " sent=" << result.network.messages_sent
        << " delivered=" << result.network.messages_delivered
        << " dropped=" << result.network.messages_dropped
        << " elapsed_ms=" << result.elapsed.ticks() / 1000 << "\n";
    const std::string summary = out.str();
    std::cout << summary;
    write_report(options, summary);
    const bool clean = result.completed && m.audit_violations == 0 &&
                       m.reconstruction_failures == 0 &&
                       result.invariant_violations == 0;
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    write_report(options, std::string("error: ") + e.what() + "\n");
    return 1;
  }
}
