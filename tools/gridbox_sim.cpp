// gridbox_sim: command-line experiment runner. See --help.
#include <string>
#include <vector>

#include "src/runner/cli.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const gridbox::runner::CliParseResult parsed =
      gridbox::runner::parse_cli(args);
  if (!parsed.options.has_value()) {
    std::fprintf(stderr, "error: %s\nrun with --help for usage\n",
                 parsed.error.c_str());
    return 1;
  }
  return gridbox::runner::run_cli(*parsed.options);
}
